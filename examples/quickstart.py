#!/usr/bin/env python3
"""Quickstart: Asbestos labels and IPC in five minutes.

Demonstrates, on a freshly booted simulated kernel:

1. the label lattice (levels ``* < 0 < 1 < 2 < 3``, ⊑/⊔/⊓);
2. two processes exchanging messages through a port;
3. contamination: receiving tainted data raises your send label;
4. the ⋆ level: the compartment creator is immune to its own taint;
5. the kernel silently dropping a flow the policy forbids.

Run:  python examples/quickstart.py
"""

from repro.core.labels import Label
from repro.core.levels import L1, L2, L3, STAR
from repro.kernel import GetLabels, Kernel, NewHandle, NewPort, Recv, Send, SetPortLabel


def main() -> None:
    # ---- 1. labels are pure values; play with the lattice ------------------
    uT = 0x1234  # any 61-bit number names a compartment
    tainted = Label({uT: L3}, L1)       # {uT 3, 1}: has seen u's data
    clean = Label({}, L1)               # {1}: has not
    clearance = Label({uT: L3}, L2)     # {uT 3, 2}: may receive u's data
    print("tainted ⊑ clearance:", tainted <= clearance)          # True
    print("tainted ⊑ default receive {2}:", tainted <= Label({}, L2))  # False
    print("join:", (tainted | clean), " meet:", (tainted & clean))

    # ---- 2-5. processes under the kernel -----------------------------------
    kernel = Kernel()
    transcript = []

    def alice(ctx):
        """Creates a compartment, serves one secret, stays clean."""
        secret_compartment = yield NewHandle()          # PS(h) <- ⋆
        inbox = yield NewPort()
        yield SetPortLabel(inbox, Label.top())          # open to everyone
        ctx.env["inbox"] = inbox
        ctx.env["compartment"] = secret_compartment
        while True:
            msg = yield Recv(port=inbox)
            # Reply with the secret, contaminated with our compartment, and
            # raise the asker's clearance so the reply can land (we hold ⋆).
            yield Send(
                msg.payload["reply"],
                {"secret": "the launch code is 0000"},
                cs=Label({secret_compartment: L3}, STAR),
                dr=Label({secret_compartment: L3}, STAR),
            )

    def bob(ctx):
        """Asks for the secret, gets tainted, then tries to leak it."""
        reply = yield NewPort()
        yield SetPortLabel(reply, Label.top())
        yield Send(ctx.env["alice_inbox"], {"reply": reply})
        msg = yield Recv(port=reply)
        send_label, _ = yield GetLabels()
        transcript.append(("bob received", msg.payload["secret"]))
        transcript.append(
            ("bob's taint", send_label(ctx.env["compartment"]))
        )
        # Now try to tell the (untainted) world:
        yield Send(ctx.env["eve_inbox"], {"leak": msg.payload["secret"]})
        transcript.append(("bob attempted the leak", True))

    def eve(ctx):
        inbox = yield NewPort()
        yield SetPortLabel(inbox, Label.top())
        ctx.env["inbox"] = inbox
        msg = yield Recv(port=inbox)
        transcript.append(("EVE GOT", msg.payload))  # must never happen

    alice_proc = kernel.spawn(alice, "alice")
    eve_proc = kernel.spawn(eve, "eve")
    kernel.run()
    kernel.spawn(
        bob,
        "bob",
        env={
            "alice_inbox": alice_proc.env["inbox"],
            "eve_inbox": eve_proc.env["inbox"],
            "compartment": alice_proc.env["compartment"],
        },
    )
    kernel.run()

    print()
    for entry in transcript:
        print(*entry)
    print()
    print("eve is still waiting:", eve_proc.state)
    print("kernel drop log:", kernel.drop_log.records)
    assert ("bob attempted the leak", True) in transcript
    assert not any(name == "EVE GOT" for name, _ in transcript)
    print("\nThe send 'succeeded', the message never arrived: unreliable")
    print("sends mean even bob cannot tell the kernel stopped him.")


if __name__ == "__main__":
    main()
