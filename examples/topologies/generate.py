"""Regenerate the example topology documents in this directory.

Run from the repository root::

    PYTHONPATH=src python examples/topologies/generate.py

``leaky_site.json`` is the deliberately broken four-process site used in
README and the test suite: a user worker's taint reaches another user's
worker through an over-permissive front end, so the embedded battery
yields an isolation violation with a two-message counterexample (which
``repro.analysis.replay`` re-executes on the real kernel), a
mandatory-declassifier violation, and a dead edge.  ``clean_site.json``
is the same site with the sink's receive label left at the default — the
kernel then drops the tainted forward, and every policy proves out.

``race_site.json`` is the seeded-bug fixture for the schedule explorer
(``repro.analysis.sched``): its battery holds under the default FIFO
schedule but a relay that polls its inbox before forwarding picks up a
secret taint when the scheduler runs the tainted sender first — a
schedule-dependent leak only interleaving exploration can find.
``okws_request_mix.json`` is a five-process OKWS-shaped request mix
(two users' requests demultiplexed to per-user workers that share a
database proxy) whose battery holds under *every* interleaving; the
explorer's DPOR must verify it exhaustively and agree with
``--exhaustive`` while exploring far fewer schedules.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.model import Topology

HERE = Path(__file__).resolve().parent


def leaky_site() -> Topology:
    topo = Topology(name="leaky-site")
    # worker_u carries user u's taint at 3 and may send to the front end
    # and the declassifier (it holds their port handles at *).
    topo.add_process(
        "worker_u",
        send=topo.label({"uT:u": 3, "front_port": "*", "decl_port": "*"}),
    )
    # The front end accepts the taint (receive raised to uT:u 3) and can
    # forward to the sink — the over-permissive hop that leaks.
    topo.add_process(
        "web_front",
        send=topo.label({"sink_port": "*"}),
        receive=topo.label({"uT:u": 3}, default=2),
    )
    # sink_v is another user's worker; its receive label also accepts
    # uT:u at 3, which is the bug the isolation policy catches.
    topo.add_process("sink_v", receive=topo.label({"uT:u": 3}, default=2))
    # The declassifier holds uT:u at * — the one legitimate path.
    topo.add_process(
        "decl",
        send=topo.label({"uT:u": "*", "sink_port": "*"}),
        receive=topo.label({"uT:u": 3}, default=2),
    )
    # vault's port keeps new_port's closed {p 0}; nobody holds the
    # handle, so sends to it are dead wiring.
    topo.add_process("vault")

    topo.add_port("front_port", owner="web_front")
    topo.add_port("sink_port", owner="sink_v")
    topo.add_port("decl_port", owner="decl")
    topo.add_port("locked_port", owner="vault")

    topo.add_edge("worker_u", "front_port", name="worker_u->front")
    topo.add_edge("web_front", "sink_port", name="front->sink")
    topo.add_edge("worker_u", "decl_port", name="worker_u->decl")
    topo.add_edge(
        "decl", "sink_port", name="decl->sink", declassifier=True
    )
    topo.add_edge("worker_u", "locked_port", name="worker_u->locked")

    topo.policies = [
        {"kind": "isolation", "process": "sink_v", "handle": "uT:u"},
        {"kind": "capability-confinement", "handle": "uT:u", "allowed": ["decl"]},
        {"kind": "mandatory-declassifier", "handle": "uT:u", "sink": "sink_v"},
        {"kind": "dead-edge", "edges": ["worker_u->locked"]},
    ]
    return topo


def clean_site() -> Topology:
    topo = Topology(name="clean-site")
    topo.add_process(
        "worker_u",
        send=topo.label({"uT:u": 3, "front_port": "*", "decl_port": "*"}),
    )
    topo.add_process(
        "web_front",
        send=topo.label({"sink_port": "*"}),
        receive=topo.label({"uT:u": 3}, default=2),
    )
    # The fix: sink_v keeps the default receive label {2}, so the kernel
    # drops any forward carrying uT:u at 3.
    topo.add_process("sink_v")
    topo.add_process(
        "decl",
        send=topo.label({"uT:u": "*", "sink_port": "*"}),
        receive=topo.label({"uT:u": 3}, default=2),
    )

    topo.add_port("front_port", owner="web_front")
    topo.add_port("sink_port", owner="sink_v")
    topo.add_port("decl_port", owner="decl")

    topo.add_edge("worker_u", "front_port", name="worker_u->front")
    topo.add_edge("web_front", "sink_port", name="front->sink")
    topo.add_edge("worker_u", "decl_port", name="worker_u->decl")
    topo.add_edge(
        "decl", "sink_port", name="decl->sink", declassifier=True
    )

    topo.policies = [
        {"kind": "isolation", "process": "sink_v", "handle": "uT:u"},
        {"kind": "capability-confinement", "handle": "uT:u", "allowed": ["decl"]},
        {"kind": "mandatory-declassifier", "handle": "uT:u", "sink": "sink_v"},
        {
            "kind": "dead-edge",
            "edges": [
                "worker_u->front",
                "front->sink",
                "worker_u->decl",
                "decl->sink",
            ],
        },
    ]
    return topo


def race_site() -> Topology:
    """The explorer's seeded bug: a schedule-dependent isolation leak.

    ``relay`` polls its inbox once before forwarding to ``sink`` (the
    edge bodies the explorer animates always poll-then-send).  Under the
    default FIFO schedule the forward happens before ``alice_w``'s
    tainted message arrives, so the forward is clean and asbcheck-style
    per-edge analysis sees nothing.  But any schedule that runs
    ``alice_w`` before relay's poll contaminates relay's send label with
    ``secret`` at 3 first, and the forward then carries the taint into
    ``sink`` — an isolation breach that exists only on some
    interleavings.
    """
    topo = Topology(name="race-site")
    topo.add_process(
        "alice_w",
        send=topo.label({"secret": 3, "relay_port": "*"}),
    )
    topo.add_process(
        "relay",
        send=topo.label({"sink_port": "*"}),
        receive=topo.label({"secret": 3}, default=2),
    )
    topo.add_process("sink", receive=topo.label({"secret": 3}, default=2))

    topo.add_port("relay_port", owner="relay")
    topo.add_port("sink_port", owner="sink")

    topo.add_edge("alice_w", "relay_port", name="alice->relay")
    topo.add_edge("relay", "sink_port", name="relay->sink")

    topo.policies = [
        {"kind": "isolation", "process": "sink", "handle": "secret", "max_level": 2},
    ]
    return topo


def okws_request_mix() -> Topology:
    """An OKWS-shaped request mix that is clean under every interleaving.

    netd hands two requests to the demultiplexer; the demultiplexer
    contaminates each per-user forward with that user's taint; each
    worker accepts only its own user's taint (the other user's is
    dropped by the receive label, whatever the schedule) and queries the
    shared database proxy, which accepts both taints.  The explorer's
    DPOR pass must prove the isolation battery over the full bounded
    schedule space and match ``--exhaustive``'s verdict.
    """
    topo = Topology(name="okws-request-mix")
    topo.add_process("netd", send=topo.label({"demux_port": "*"}))
    topo.add_process(
        "demux",
        send=topo.label(
            {
                "worker_alice_port": "*",
                "worker_bob_port": "*",
                "uT:alice": "*",
                "uT:bob": "*",
            }
        ),
    )
    topo.add_process(
        "worker_alice",
        send=topo.label({"db_port": "*"}),
        receive=topo.label({"uT:alice": 3}, default=2),
    )
    topo.add_process(
        "worker_bob",
        send=topo.label({"db_port": "*"}),
        receive=topo.label({"uT:bob": 3}, default=2),
    )
    topo.add_process(
        "dbproxy",
        send=topo.label({"db": "*"}),
        receive=topo.label({"uT:alice": 3, "uT:bob": 3}, default=2),
    )

    topo.add_port("demux_port", owner="demux")
    topo.add_port("worker_alice_port", owner="worker_alice")
    topo.add_port("worker_bob_port", owner="worker_bob")
    topo.add_port("db_port", owner="dbproxy")

    topo.add_edge("netd", "demux_port", name="req-alice")
    topo.add_edge("netd", "demux_port", name="req-bob")
    topo.add_edge(
        "demux",
        "worker_alice_port",
        cs=topo.label({"uT:alice": 3}, default="*"),
        name="demux->alice",
    )
    topo.add_edge(
        "demux",
        "worker_bob_port",
        cs=topo.label({"uT:bob": 3}, default="*"),
        name="demux->bob",
    )
    topo.add_edge("worker_alice", "db_port", name="alice->db")
    topo.add_edge("worker_bob", "db_port", name="bob->db")

    topo.policies = [
        {"kind": "isolation", "process": "worker_alice", "handle": "uT:bob", "max_level": 2},
        {"kind": "isolation", "process": "worker_bob", "handle": "uT:alice", "max_level": 2},
        {"kind": "capability-confinement", "handle": "db", "allowed": ["dbproxy"]},
        {
            "kind": "dead-edge",
            "edges": [
                "req-alice",
                "req-bob",
                "demux->alice",
                "demux->bob",
                "alice->db",
                "bob->db",
            ],
        },
    ]
    return topo


def main() -> None:
    for topo, filename in (
        (leaky_site(), "leaky_site.json"),
        (clean_site(), "clean_site.json"),
        (race_site(), "race_site.json"),
        (okws_request_mix(), "okws_request_mix.json"),
    ):
        (HERE / filename).write_text(topo.dumps() + "\n", encoding="utf-8")
        print(f"wrote {HERE / filename}")


if __name__ == "__main__":
    main()
