"""Regenerate the example topology documents in this directory.

Run from the repository root::

    PYTHONPATH=src python examples/topologies/generate.py

``leaky_site.json`` is the deliberately broken four-process site used in
README and the test suite: a user worker's taint reaches another user's
worker through an over-permissive front end, so the embedded battery
yields an isolation violation with a two-message counterexample (which
``repro.analysis.replay`` re-executes on the real kernel), a
mandatory-declassifier violation, and a dead edge.  ``clean_site.json``
is the same site with the sink's receive label left at the default — the
kernel then drops the tainted forward, and every policy proves out.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.model import Topology

HERE = Path(__file__).resolve().parent


def leaky_site() -> Topology:
    topo = Topology(name="leaky-site")
    # worker_u carries user u's taint at 3 and may send to the front end
    # and the declassifier (it holds their port handles at *).
    topo.add_process(
        "worker_u",
        send=topo.label({"uT:u": 3, "front_port": "*", "decl_port": "*"}),
    )
    # The front end accepts the taint (receive raised to uT:u 3) and can
    # forward to the sink — the over-permissive hop that leaks.
    topo.add_process(
        "web_front",
        send=topo.label({"sink_port": "*"}),
        receive=topo.label({"uT:u": 3}, default=2),
    )
    # sink_v is another user's worker; its receive label also accepts
    # uT:u at 3, which is the bug the isolation policy catches.
    topo.add_process("sink_v", receive=topo.label({"uT:u": 3}, default=2))
    # The declassifier holds uT:u at * — the one legitimate path.
    topo.add_process(
        "decl",
        send=topo.label({"uT:u": "*", "sink_port": "*"}),
        receive=topo.label({"uT:u": 3}, default=2),
    )
    # vault's port keeps new_port's closed {p 0}; nobody holds the
    # handle, so sends to it are dead wiring.
    topo.add_process("vault")

    topo.add_port("front_port", owner="web_front")
    topo.add_port("sink_port", owner="sink_v")
    topo.add_port("decl_port", owner="decl")
    topo.add_port("locked_port", owner="vault")

    topo.add_edge("worker_u", "front_port", name="worker_u->front")
    topo.add_edge("web_front", "sink_port", name="front->sink")
    topo.add_edge("worker_u", "decl_port", name="worker_u->decl")
    topo.add_edge(
        "decl", "sink_port", name="decl->sink", declassifier=True
    )
    topo.add_edge("worker_u", "locked_port", name="worker_u->locked")

    topo.policies = [
        {"kind": "isolation", "process": "sink_v", "handle": "uT:u"},
        {"kind": "capability-confinement", "handle": "uT:u", "allowed": ["decl"]},
        {"kind": "mandatory-declassifier", "handle": "uT:u", "sink": "sink_v"},
        {"kind": "dead-edge", "edges": ["worker_u->locked"]},
    ]
    return topo


def clean_site() -> Topology:
    topo = Topology(name="clean-site")
    topo.add_process(
        "worker_u",
        send=topo.label({"uT:u": 3, "front_port": "*", "decl_port": "*"}),
    )
    topo.add_process(
        "web_front",
        send=topo.label({"sink_port": "*"}),
        receive=topo.label({"uT:u": 3}, default=2),
    )
    # The fix: sink_v keeps the default receive label {2}, so the kernel
    # drops any forward carrying uT:u at 3.
    topo.add_process("sink_v")
    topo.add_process(
        "decl",
        send=topo.label({"uT:u": "*", "sink_port": "*"}),
        receive=topo.label({"uT:u": 3}, default=2),
    )

    topo.add_port("front_port", owner="web_front")
    topo.add_port("sink_port", owner="sink_v")
    topo.add_port("decl_port", owner="decl")

    topo.add_edge("worker_u", "front_port", name="worker_u->front")
    topo.add_edge("web_front", "sink_port", name="front->sink")
    topo.add_edge("worker_u", "decl_port", name="worker_u->decl")
    topo.add_edge(
        "decl", "sink_port", name="decl->sink", declassifier=True
    )

    topo.policies = [
        {"kind": "isolation", "process": "sink_v", "handle": "uT:u"},
        {"kind": "capability-confinement", "handle": "uT:u", "allowed": ["decl"]},
        {"kind": "mandatory-declassifier", "handle": "uT:u", "sink": "sink_v"},
        {
            "kind": "dead-edge",
            "edges": [
                "worker_u->front",
                "front->sink",
                "worker_u->decl",
                "decl->sink",
            ],
        },
    ]
    return topo


def main() -> None:
    for topo, filename in (
        (leaky_site(), "leaky_site.json"),
        (clean_site(), "clean_site.json"),
    ):
        (HERE / filename).write_text(topo.dumps() + "\n", encoding="utf-8")
        print(f"wrote {HERE / filename}")


if __name__ == "__main__":
    main()
