#!/usr/bin/env python3
"""The storage channels of paper Section 8, demonstrated and mitigated.

Asbestos's labels stop *explicit* flows; this example shows the two
inherent storage channels the paper enumerates actually leaking bits:

1. **Label observation** — "labels can be observed through lack of
   communication": a tainted process contaminates heartbeat process B_i
   to transmit bit i; the observer sees whose heartbeat stops.
2. **Shared program counter** — event processes of one base process share
   an execution context, so a tainted EP blocking the process delays an
   untainted sibling observably.

Both channels consume fresh processes per bit, which is why the paper's
proposed mitigation is limiting process creation rates: the demo finishes
by installing a fork-rate limiter and watching the channel die.

Run:  python examples/covert_channels.py
"""

from repro.covert import ForkRateLimiter, label_observation_channel, yield_order_channel
from repro.kernel.kernel import Kernel


def main() -> None:
    secret = [1, 0, 1, 1, 0, 0, 1, 0]
    print(f"secret bits: {secret}")

    print("\n1. label-observation channel (heartbeats through process B_i):")
    sent, received = label_observation_channel(secret)
    print(f"   observer decoded: {received}  -> {'LEAKED' if received == sent else 'failed'}")

    print("\n2. shared-program-counter channel (EP stalls the whole process):")
    sent, received = yield_order_channel(secret)
    print(f"   observer decoded: {received}  -> {'LEAKED' if received == sent else 'failed'}")

    print("\n3. mitigation: fork-rate limiting (each bit costs 2 fresh processes)")
    kernel = Kernel()
    limiter = ForkRateLimiter(budget=8)  # observer + sender + 3 bit-pairs
    kernel.fork_limiter = limiter
    sent, received = label_observation_channel(secret, kernel=kernel)
    print(f"   with budget 8: decoded {received} of {sent}")
    print(f"   spawns denied: {limiter.denied}; leak bounded to {len(received)} bits")
    assert len(received) < len(sent)
    print()
    print("Neither channel needs to be eliminated — the design goal is that")
    print("every storage channel costs ≥2 cooperating processes, so capping")
    print("process creation caps the total leak (Section 8).")


if __name__ == "__main__":
    main()
