#!/usr/bin/env python3
"""Per-user home directories on the hierarchical labeled filesystem.

Each user's home directory carries that user's taint compartment, so the
label policy composes with the namespace:

- any file created under ``/home/u`` contaminates its readers with
  ``uT 3``, whether or not the file declares anything itself;
- ``ls /home`` shows each user only the homes they are cleared for —
  other users' homes are simply absent, because even *existence* is
  information;
- writes into a home require its owner's grant handle.

Run:  python examples/home_directories.py
"""

from repro.core.labels import Label
from repro.core.levels import L2, L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel import (
    ChangeLabel,
    Kernel,
    NewHandle,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)
from repro.servers.filesystem import filesystem_body


def main() -> None:
    kernel = Kernel()
    fs = kernel.spawn(filesystem_body, "fs9")
    kernel.run()
    port = fs.env["fs9_port"]
    out = {}

    def user_session(ctx):
        """One logged-in user: write a note in their home, then look around."""
        me = ctx.env["user"]
        chan = yield from Channel.open()
        yield Send(ctx.env["admin_port"], {"user": me, "reply": chan.port})
        creds = yield Recv(port=chan.port)
        uT, uG = creds.payload["taint"], creds.payload["grant"]
        yield ChangeLabel(raise_receive={uT: L3})  # we were granted uT ⋆

        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["home", me]))
        yield from chan.call(
            port,
            P.request("CREATE", fid=1, name="note.txt", kind="file",
                      data=f"{me}'s private note".encode()),
        )
        # ls /home: only our own home is visible to us.
        yield from chan.call(port, P.request("WALK", fid=0, newfid=2, names=["home"]))
        listing = yield from chan.call(
            port, P.request(P.READ, fid=2), v=Label({uT: L3}, L2)
        )
        out[f"{me} ls /home"] = sorted(e["name"] for e in listing.payload["entries"])
        # Read our own note back.
        yield from chan.call(
            port, P.request("WALK", fid=0, newfid=3, names=["home", me, "note.txt"])
        )
        note = yield from chan.call(port, P.request(P.READ, fid=3))
        out[f"{me} note"] = note.payload["data"].decode()

    def admin(ctx):
        """Builds /home, mints per-user compartments, logs the users in."""
        admin_port = yield NewPort()
        yield SetPortLabel(admin_port, Label.top())
        chan = yield from Channel.open()
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(port, P.request("CREATE", fid=0, name="home", kind="dir"))
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["home"]))
        handles = {}
        for user in ("alice", "bob"):
            uT = yield NewHandle()
            uG = yield NewHandle()
            handles[user] = (uT, uG)
            yield from chan.call(
                port,
                P.request("CREATE", fid=1, name=user, kind="dir", taint=uT, grant=uG),
                ds=Label({uT: STAR}, L3),
            )
        yield from chan.call(
            port, P.request("CREATE", fid=0, name="motd", kind="file", data=b"welcome!")
        )
        yield Spawn(user_session, name="alice", env={"user": "alice", "admin_port": admin_port})
        yield Spawn(user_session, name="bob", env={"user": "bob", "admin_port": admin_port})
        for _ in range(2):
            hello = yield Recv(port=admin_port)
            who = hello.payload["user"]
            wT, wG = handles[who]
            yield Send(
                hello.payload["reply"],
                {"taint": wT, "grant": wG},
                ds=Label({wT: STAR, wG: STAR}, L3),
            )

    kernel.spawn(admin, "admin")
    kernel.run()

    for key in sorted(out):
        print(f"{key:>18}: {out[key]}")
    assert out["alice ls /home"] == ["alice"]
    assert out["bob ls /home"] == ["bob"]
    assert out["alice note"] == "alice's private note"
    print()
    print("Each user sees only their own home in /home — the other's very")
    print("existence is filtered, and its contents would be undeliverable.")


if __name__ == "__main__":
    main()
