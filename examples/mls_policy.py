#!/usr/bin/env python3
"""Traditional multi-level security emulated with Asbestos compartments
(paper Section 5.2, "The four levels").

Two compartments — s (secret) and t (top-secret) — give the classic
unclassified/secret/top-secret chain.  A kernel demo then shows the
lattice enforced end to end: a top-secret reader, a secret file server,
and a downgrader that sanitises a secret for release.

Run:  python examples/mls_policy.py
"""

from repro.core.labels import Label
from repro.core.levels import L3, STAR
from repro.kernel import Kernel, NewHandle, NewPort, Recv, Send, SetPortLabel, Spawn
from repro.policies.mls import MlsPolicy


def main() -> None:
    levels = ["unclassified", "secret", "top-secret"]
    # A harness-side policy object for the pure-lattice demonstration.
    policy = MlsPolicy.create(levels)
    print("compartments:", {k: hex(v) for k, v in policy.compartments.items()})

    print("\nflow matrix (row may flow to column):")
    print(f"{'':>14}", *(f"{l[:7]:>9}" for l in levels))
    for frm in levels:
        row = [("yes" if policy.can_flow(frm, to) else "-") for to in levels]
        print(f"{frm:>14}", *(f"{c:>9}" for c in row))

    # -- the same policy enforced by the kernel --------------------------------------
    kernel = Kernel()
    log = []

    def reader(ctx):
        """A subject cleared to *clearance*, reporting what reaches it."""
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["mgr"], {"who": ctx.env["who"], "port": port})
        while True:
            msg = yield Recv(port=port)
            log.append((ctx.env["who"], msg.payload))

    def downgrader(ctx):
        """Holds ⋆ for every compartment: may sanitise and declassify."""
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["mgr"], {"who": "downgrader", "port": port})
        while True:
            msg = yield Recv(port=port)
            if "doc" not in msg.payload:
                continue  # the setup grant; the DS label did all the work
            # Sanitise, then release without contamination (we hold ⋆; our
            # send label was never raised).
            sanitised = msg.payload["doc"].replace("NOFORN ", "")
            yield Send(msg.payload["release_to"], f"[sanitised] {sanitised}")

    def administrator(ctx):
        # The administrator mints the compartments *inside* the kernel —
        # new_handle is what confers ⋆; handle values alone mean nothing.
        s = yield NewHandle()
        t = yield NewHandle()
        kpolicy = MlsPolicy.from_handles(levels, [s, t])
        mgr = yield NewPort()
        yield SetPortLabel(mgr, Label.top())
        yield Spawn(reader, name="unclassified-reader", env={"mgr": mgr, "who": "unclassified"})
        yield Spawn(reader, name="topsecret-reader", env={"mgr": mgr, "who": "top-secret"})
        yield Spawn(downgrader, name="downgrader", env={"mgr": mgr})
        ports = {}
        for _ in range(3):
            msg = yield Recv(port=mgr)
            ports[msg.payload["who"]] = msg.payload["port"]
        # Clear the top-secret reader and the downgrader (we created the
        # compartments, so we hold both stars).
        yield Send(ports["top-secret"], {"setup": 1},
                   dr=Label({s: L3, t: L3}, STAR))
        yield Send(ports["downgrader"], {"setup": 1},
                   ds=Label({s: STAR, t: STAR}, L3),
                   dr=Label({s: L3, t: L3}, STAR))

        # A secret document, published at classification "secret":
        secret_doc = "NOFORN troop movements"
        for target in ("top-secret", "unclassified"):
            yield Send(ports[target], {"doc": secret_doc},
                       cs=kpolicy.contamination("secret"))
        # The downgrader sanitises it for the unclassified reader:
        yield Send(ports["downgrader"],
                   {"doc": secret_doc, "release_to": ports["unclassified"]},
                   cs=kpolicy.contamination("secret"))

    kernel.spawn(administrator, "administrator")
    kernel.run()

    print("\nwho received what:")
    for who, payload in log:
        print(f"  {who:>13}: {payload}")
    print("kernel drops:", kernel.drop_log.records)
    received_by = [who for who, _ in log]
    assert "top-secret" in received_by
    assert all(
        isinstance(p, str) and p.startswith("[sanitised]")
        for who, p in log
        if who == "unclassified"
    )
    print("\nThe secret reached top-secret clearance directly; unclassified")
    print("got only the downgrader's sanitised release. Level-2/3 defaults")
    print("did all the enforcement; no reader code was trusted.")


if __name__ == "__main__":
    main()
