"""Randomised noninterference tests.

A web of relay processes forwards everything it receives to random
targets.  One process holds a secret and sends it out contaminated with a
fresh compartment; observers have explicitly refused that compartment
(receive label lowered below the taint).  Whatever the topology and
forwarding pattern, no payload *derived from the secret* may ever reach
an observer — the kernel's transitive contamination must track derivation
through any number of hops.

This is the property the paper's design argument rests on ("isolation
policies can restrict information flow among processes that may be
ignorant of the policies"), tested against an oracle that tracks
derivation in payload metadata the kernel never looks at.
"""

import random

import pytest

from repro.core.labels import Label
from repro.core.levels import L1, L2, L3, STAR
from repro.kernel import (
    ChangeLabel,
    Kernel,
    NewHandle,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
)

RELAYS = 6
ROUNDS = 25


def _run_web(seed: int, taint_level: int):
    """Build the web, run the gossip, return (observer_log, kernel)."""
    rng = random.Random(seed)
    kernel = Kernel()
    observer_log = []
    ports = {}

    def relay(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["coord"], {"who": ctx.env["who"], "port": port})
        while True:
            msg = yield Recv(port=port)
            payload = msg.payload
            if payload.get("kind") == "route" and payload["route"]:
                # Forward a *derived* payload along the remaining route.
                next_hop, rest = payload["route"][0], payload["route"][1:]
                yield Send(
                    next_hop,
                    {
                        "kind": "route",
                        "route": rest,
                        "derived_from_secret": payload["derived_from_secret"],
                        "body": f"derived({payload['body']})",
                    },
                )

    def observer(ctx):
        h = ctx.env["h"]
        # Refuse the secret compartment outright.
        yield ChangeLabel(receive=Label({h: L1}, L2))
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["coord"], {"who": "observer", "port": port})
        while True:
            msg = yield Recv(port=port)
            observer_log.append(msg.payload)

    def coordinator(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        coord = yield NewPort()
        yield SetPortLabel(coord, Label.top())
        from repro.kernel import Spawn

        for i in range(RELAYS):
            yield Spawn(relay, name=f"relay{i}", env={"coord": coord, "who": i})
        yield Spawn(observer, name="observer", env={"coord": coord, "h": h})
        for _ in range(RELAYS + 1):
            msg = yield Recv(port=coord)
            ports[msg.payload["who"]] = msg.payload["port"]

        # Gossip: secret and innocuous payloads along random routes that
        # may well end at the observer.
        for round_no in range(ROUNDS):
            secret = rng.random() < 0.5
            hops = rng.randint(1, 3)
            route = [ports[rng.randrange(RELAYS)] for _ in range(hops)]
            route.append(ports["observer"])
            payload = {
                "kind": "route",
                "route": route[1:],
                "derived_from_secret": secret,
                "body": f"msg{round_no}",
            }
            if secret:
                yield Send(
                    route[0],
                    payload,
                    contaminate=Label({h: taint_level}, STAR),
                )
            else:
                yield Send(route[0], payload)

    kernel.spawn(coordinator, "coordinator")
    kernel.run(max_steps=10_000_000)
    return observer_log, kernel


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_no_secret_derivation_reaches_observer_level2(seed):
    # Partial taint (level 2) spreads freely among relays (default receive
    # is 2) — the permissive model — yet the observer, who lowered its
    # receive label, must never see anything derived from the secret.
    log, kernel = _run_web(seed, taint_level=L2)
    assert log, "the web must deliver *something* (innocuous traffic flows)"
    assert all(not p["derived_from_secret"] for p in log)
    assert kernel.drop_log.count("label-check") > 0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_no_secret_derivation_reaches_observer_level3(seed):
    # Full taint (level 3): even the relays refuse it (default receive 2),
    # so the secret dies at the first hop — and certainly never arrives.
    log, kernel = _run_web(seed, taint_level=L3)
    assert all(not p["derived_from_secret"] for p in log)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_relays_that_saw_secret_are_tainted(seed):
    # Oracle on final kernel state: any relay whose payload history could
    # include the secret carries the taint in its send label; relays are
    # interchangeable, so check globally: every process that is NOT
    # tainted never forwarded a derived payload to the observer (implied
    # by the observer log being clean, asserted in the tests above) and
    # every tainted relay got there through delivery effects only.
    log, kernel = _run_web(seed, taint_level=L2)
    for proc in kernel.processes.values():
        if not proc.name.startswith("relay"):
            continue
        for handle, level in proc.send_label.iter_entries():
            assert level in (L2, STAR), f"{proc.name} has unexpected level {level}"
