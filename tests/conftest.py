"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import settings as hypothesis_settings

from repro.core.handles import HandleAllocator
from repro.core.labels import Label
from repro.core.levels import ALL_LEVELS
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel

# Hypothesis profiles (select with ``pytest --hypothesis-profile=ci``):
#
# - ``dev`` (default): stock Hypothesis behaviour — fresh random examples
#   every run, shrinking failures to minimal counterexamples locally.
# - ``ci``: derandomized (the seed is derived from each test, so a green
#   CI run is reproducible and flakes can't hide behind reseeding) and
#   with the per-example deadline off — shared runners have noisy clocks
#   and the conformance suite's OKWS replays are legitimately slow.
hypothesis_settings.register_profile("ci", deadline=None, derandomize=True, print_blob=True)
hypothesis_settings.register_profile("dev")
hypothesis_settings.load_profile("dev")


@pytest.fixture
def kernel():
    """A fresh simulated machine with tracing on (program crashes become
    test failures instead of silent process exits)."""
    return Kernel(config=KernelConfig(trace=True))


@pytest.fixture
def alloc():
    """A deterministic handle allocator for label-level tests."""
    return HandleAllocator(key=b"test-boot")


def random_label(rng: random.Random, max_entries: int = 40, handle_space: int = 100) -> Label:
    """A random label over a small handle space (collisions intended)."""
    n = rng.randint(0, max_entries)
    entries = {rng.randrange(handle_space): rng.choice(ALL_LEVELS) for _ in range(n)}
    return Label(entries, rng.choice(ALL_LEVELS))


def run_program(kernel: Kernel, body, name: str = "prog", env=None, parent=None):
    """Spawn *body*, run the machine to quiescence, return the process."""
    process = kernel.spawn(body, name, env=env or {}, parent=parent)
    kernel.run()
    return process
