"""Bounded calls: ``Channel.call(deadline=...)``, retries, and the ``req``
request-matching protocol.

Asbestos sends are unreliable — either leg of a call can vanish without a
trace — so the only liveness tool a client has is a deadline on the reply
and idempotent (or server-deduplicated) retries.  These tests pin down
the contract: :class:`CallTimeout` after the retry budget, one ``req``
number per logical call (retries resend it), stale replies from earlier
calls silently discarded, and the ``req`` plumbing stripped from the
payload the caller finally sees.
"""

import pytest

from repro.core.labels import Label
from repro.ipc import CallTimeout, Channel, protocol as P
from repro.ipc.rpc import serve_forever
from repro.kernel import NewPort, Recv, Send, SetPortLabel


def _serve(handler):
    """A server body: open a public port, publish it, serve forever."""

    def body(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        yield from serve_forever(port, handler)

    return body


def test_call_with_deadline_returns_reply(kernel):
    def handler(msg):
        return P.reply_to(msg.payload, n=msg.payload["n"] + 1)
        yield  # pragma: no cover

    srv = kernel.spawn(_serve(handler), "server")
    kernel.run()
    results = []

    def client(ctx):
        chan = yield from Channel.open()
        reply = yield from chan.call(
            srv.env["port"], P.request("INC", n=41), deadline=10_000_000
        )
        results.append(reply.payload)

    kernel.spawn(client, "client")
    kernel.run()
    assert results[0]["n"] == 42
    # The request number is call() plumbing, not part of the reply.
    assert "req" not in results[0]


def test_call_timeout_raises_after_retry_budget(kernel):
    """A server that never answers: every attempt times out, and the
    exception reports the full attempt count."""

    def black_hole(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        while True:
            yield Recv(port=port)  # swallow silently

    srv = kernel.spawn(black_hole, "black-hole")
    kernel.run()
    caught = []

    def client(ctx):
        chan = yield from Channel.open()
        start = ctx.now
        try:
            yield from chan.call(
                srv.env["port"],
                P.request("PING"),
                deadline=1_000_000,
                retries=2,
            )
        except CallTimeout as err:
            caught.append((err.attempts, ctx.now - start))

    kernel.spawn(client, "client")
    kernel.run()
    attempts, elapsed = caught[0]
    assert attempts == 3
    # Exponential backoff (2x default): 1M + 2M + 4M of waiting, minimum.
    assert elapsed >= 7_000_000


def test_call_retries_reuse_the_request_number(kernel):
    """The server ignores the first attempt and answers the second; both
    attempts must carry the *same* ``req`` so server-side dedup works."""
    seen = []

    def flaky(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        first = yield Recv(port=port)
        seen.append(first.payload["req"])  # dropped on the floor
        second = yield Recv(port=port)
        seen.append(second.payload["req"])
        yield Send(second.payload["reply"], P.reply_to(second.payload, ok=True))

    srv = kernel.spawn(flaky, "flaky")
    kernel.run()
    results = []

    def client(ctx):
        chan = yield from Channel.open()
        reply = yield from chan.call(
            srv.env["port"], P.request("PING"), deadline=2_000_000, retries=3
        )
        results.append(reply.payload["ok"])

    kernel.spawn(client, "client")
    kernel.run()
    assert results == [True]
    assert len(seen) == 2 and seen[0] == seen[1]


def test_stale_reply_from_earlier_call_is_discarded(kernel):
    """Call #1 times out; its answer arrives *during* call #2.  The stale
    reply (old ``req``) must be skipped, and call #2 gets its own."""

    def laggard(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        first = yield Recv(port=port)
        second = yield Recv(port=port)
        # Answer the long-dead first call, then the live second one.
        yield Send(first.payload["reply"], P.reply_to(first.payload, which="old"))
        yield Send(second.payload["reply"], P.reply_to(second.payload, which="new"))

    srv = kernel.spawn(laggard, "laggard")
    kernel.run()
    results = []

    def client(ctx):
        chan = yield from Channel.open()
        with pytest.raises(CallTimeout):
            yield from chan.call(
                srv.env["port"], P.request("ONE"), deadline=1_000_000
            )
        reply = yield from chan.call(
            srv.env["port"], P.request("TWO"), deadline=50_000_000
        )
        results.append(reply.payload["which"])

    kernel.spawn(client, "client")
    kernel.run()
    assert results == ["new"]


def test_call_nowait_reply_matched_by_req(kernel):
    def handler(msg):
        return P.reply_to(msg.payload, n=msg.payload["n"] * 10)
        yield  # pragma: no cover

    srv = kernel.spawn(_serve(handler), "server")
    kernel.run()
    results = []

    def client(ctx):
        chan = yield from Channel.open()
        req_a = yield from chan.call_nowait(srv.env["port"], P.request("MUL", n=1))
        req_b = yield from chan.call_nowait(srv.env["port"], P.request("MUL", n=2))
        assert req_a != req_b
        # Collect both replies, keyed by req, in whatever order they land.
        got = {}
        while len(got) < 2:
            msg = yield from chan.recv(timeout=10_000_000)
            assert msg is not None
            got[msg.payload["req"]] = msg.payload["n"]
        results.append((got[req_a], got[req_b]))

    kernel.spawn(client, "client")
    kernel.run()
    assert results == [(10, 20)]


def test_serve_forever_echoes_req_for_plain_handlers(kernel):
    """Handlers that build replies by hand (no ``reply_to``) still get
    the ``req`` echoed by the serve loop, so bounded calls match."""

    def handler(msg):
        return {"type": "OK_R"}  # no req, no tag — bare minimum
        yield  # pragma: no cover

    srv = kernel.spawn(_serve(handler), "server")
    kernel.run()
    results = []

    def client(ctx):
        chan = yield from Channel.open()
        reply = yield from chan.call(
            srv.env["port"], P.request("OK"), deadline=10_000_000
        )
        results.append(reply.payload["type"])

    kernel.spawn(client, "client")
    kernel.run()
    assert results == ["OK_R"]


def test_channel_sleep_advances_time(kernel):
    marks = []

    def body(ctx):
        chan = yield from Channel.open()
        start = ctx.now
        yield from chan.sleep(3_000_000)
        marks.append(ctx.now - start)

    kernel.spawn(body, "sleeper")
    kernel.run()
    assert marks[0] >= 3_000_000
