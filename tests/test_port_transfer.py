"""Transferable receive rights (paper Section 4: "Messages sent to a port
are delivered to the single process with receive rights for that port;
this is initially the process that created the port, but receive rights
are transferable.")."""


from repro.core.labels import Label
from repro.core.levels import L3, STAR
from repro.kernel import NewHandle, NewPort, Recv, Send, SetPortLabel
from repro.kernel.errors import NotOwner


def open_port():
    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    return port


def test_transfer_moves_receive_rights(kernel):
    log = []

    def receiver(ctx):
        inbox = yield from open_port()
        ctx.env["inbox"] = inbox
        msg = yield Recv(port=inbox)
        moved = msg.payload["moved"]
        # We can now receive on the transferred port.
        m2 = yield Recv(port=moved)
        log.append(m2.payload)

    r = kernel.spawn(receiver, "receiver")
    kernel.run()

    def original(ctx):
        moved = yield from open_port()
        yield Send(r.env["inbox"], {"moved": moved}, transfer=(moved,))
        # We no longer own it: receiving on it is now an error.
        try:
            yield Recv(port=moved, block=False)
        except NotOwner:
            ctx.env["lost_rights"] = True
        # But anyone can still *send* to it (it is open).
        yield Send(moved, "hello new owner")

    o = kernel.spawn(original, "original")
    kernel.run()
    assert log == ["hello new owner"]
    assert o.env.get("lost_rights") is True


def test_transfer_of_unowned_port_raises(kernel):
    caught = []

    def a(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        yield Recv(port=port)

    pa = kernel.spawn(a, "a")
    kernel.run()

    def thief(ctx):
        target = yield from open_port()
        try:
            yield Send(target, "x", transfer=(ctx.env["victim"],))
        except NotOwner:
            caught.append(True)

    kernel.spawn(thief, "thief", env={"victim": pa.env["port"]})
    kernel.run()
    assert caught == [True]


def test_transfer_on_dropped_message_destroys_port(kernel):
    # The carrying message violates the receiver's label policy: the
    # rights must not silently return (delivery-notification channel), so
    # the port dies.
    def receiver(ctx):
        inbox = yield from open_port()
        ctx.env["inbox"] = inbox
        yield Recv(port=inbox)

    r = kernel.spawn(receiver, "receiver")
    kernel.run()

    def sender(ctx):
        h = yield NewHandle()
        moved = yield from open_port()
        ctx.env["moved"] = moved
        # Level-3 contamination the receiver cannot accept: dropped.
        yield Send(
            r.env["inbox"],
            {"moved": moved},
            contaminate=Label({h: L3}, STAR),
            transfer=(moved,),
        )

    s = kernel.spawn(sender, "sender")
    kernel.run()
    assert kernel.drop_log.count("label-check") == 1
    assert s.env["moved"] not in kernel.ports


def test_transfer_to_dead_port_destroys_port(kernel):
    def sender(ctx):
        moved = yield from open_port()
        ctx.env["moved"] = moved
        yield Send(123456, {"moved": moved}, transfer=(moved,))

    s = kernel.spawn(sender, "sender")
    kernel.run()
    assert s.env["moved"] not in kernel.ports


def test_queued_messages_follow_the_port(kernel):
    # Messages already queued on a port are received by the new owner.
    log = []

    def new_owner(ctx):
        inbox = yield from open_port()
        ctx.env["inbox"] = inbox
        msg = yield Recv(port=inbox)
        m2 = yield Recv(port=msg.payload["moved"])
        log.append(m2.payload)

    n = kernel.spawn(new_owner, "new-owner")
    kernel.run()

    def original(ctx):
        moved = yield from open_port()
        yield Send(moved, "queued before transfer")   # self-send, queues
        yield Send(n.env["inbox"], {"moved": moved}, transfer=(moved,))

    kernel.spawn(original, "original")
    kernel.run()
    assert log == ["queued before transfer"]
