"""asbsched: the schedule-space explorer (repro.analysis.sched).

Covers the whole tentpole surface: the NondetSource decision stream, the
(plan, seed, schedule) determinism contract, DPOR vs exhaustive
agreement and reduction, counterexample shrinking to a 1-minimal
schedule, byte-identical schedule/v1 replay through the real kernel,
the timer-vs-message wake-order invariant under adversarial schedules,
fault-branch exploration, and the CLI exit codes and SARIF output.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import sched
from repro.analysis.cli import main as cli_main
from repro.analysis.model import load as load_topology
from repro.analysis.sarif import sched_sarif
from repro.core.labels import Label
from repro.faults.plan import FaultPlan
from repro.kernel import Recv, Send
from repro.kernel.nondet import ChoicePoint, NondetSource, ScriptedSource, SeededSource
from repro.kernel.syscalls import Compute

ROOT = Path(__file__).resolve().parents[1]
TOPOLOGIES = ROOT / "examples" / "topologies"


def race_scenario(**kwargs):
    return sched.scenario_from_topology(
        load_topology(TOPOLOGIES / "race_site.json"), **kwargs
    )


def mix_scenario(**kwargs):
    return sched.scenario_from_topology(
        load_topology(TOPOLOGIES / "okws_request_mix.json"), **kwargs
    )


# -- the decision stream ---------------------------------------------------------------


def test_nondet_base_defaults():
    source = NondetSource()
    assert source.choose("pick", ("a", "b")) == 0
    assert not source.chance("drop", 0.99)


def test_seeded_source_single_draw_per_chance():
    import random

    source = SeededSource(seed=7)
    reference = random.Random(7)
    outcomes = [source.chance("drop", p) for p in (0.3, 0.9, 0.0, 1.0, 0.5)]
    expected = [reference.random() < p for p in (0.3, 0.9, 0.0, 1.0, 0.5)]
    assert outcomes == expected


def test_scripted_source_replays_and_logs():
    source = ScriptedSource((1, 0, 9), seed=0)
    assert source.choose("pick", ("a", "b", "c")) == 1
    assert source.choose("pick", ("a", "b")) == 0
    # Out-of-range decisions clamp to the default, never crash the run.
    assert source.choose("pick", ("a", "b")) == 0
    # Beyond the script: the FIFO default.
    assert source.choose("pick", ("a", "b")) == 0
    assert source.decisions() == [1, 0, 0, 0]
    assert [point.kind for point in source.log] == ["pick"] * 4
    assert source.log[0].seq == 0 and source.log[3].seq == 3


def test_scripted_chance_branches_only_fractional_rules():
    source = ScriptedSource((1,), seed=0)
    # p<=0 and p>=1 are decided, not branched: no choice point is spent.
    assert not source.chance("drop", 0.0)
    assert source.chance("drop", 1.0)
    assert source.log == []
    # A fractional p becomes an explicit ("skip", "fire") branch.
    assert source.chance("drop", 0.5, "relay")
    point = source.log[0]
    assert point.kind == "chance:drop:relay"
    assert point.options == ("skip", "fire")
    assert not point.forced


def test_choice_point_forced_and_json():
    forced = ChoicePoint(seq=0, kind="pick", options=("only",), chosen=0)
    assert forced.forced
    doc = ChoicePoint(seq=1, kind="wake", options=("timers", "task"), chosen=1).to_json()
    assert doc == {
        "kind": "wake",
        "chosen": 1,
        "option": "task",
        "options": ["timers", "task"],
    }


# -- determinism: (plan, seed, schedule) determines the run ---------------------------


def test_default_schedule_is_fifo_and_clean():
    scenario = race_scenario()
    run = scenario.execute()
    assert not run.violating
    assert run.quiescent
    assert all(point.chosen == 0 for point in run.decisions)


def test_same_schedule_same_digest():
    scenario = race_scenario()
    a = scenario.execute(ScriptedSource((0, 2), seed=0))
    b = scenario.execute(ScriptedSource((0, 2), seed=0))
    assert a.digest == b.digest
    assert a.violating and b.violating


def test_schedule_and_plan_determine_faultlog():
    plan = FaultPlan.from_json(
        {
            "schema": "faultplan/v1",
            "rules": [
                {"id": "drop-relay", "kind": "drop", "p": 0.5, "match": "relay"}
            ],
        }
    )
    scenario = race_scenario(plan=plan)
    base = scenario.execute()
    chance_points = [
        p for p in base.decisions if p.kind.startswith("chance:drop")
    ]
    assert chance_points, "fractional fault rules must surface as choice points"
    # Force the drop: relay's forward vanishes, byte-identically on replay.
    script = [
        1 if point.kind.startswith("chance:drop") else point.chosen
        for point in base.decisions
    ]
    fired = scenario.execute(ScriptedSource(script, seed=0))
    assert b'"drop"' in fired.fault_events
    assert "relay->sink" not in fired.delivered_edges
    again = scenario.execute(ScriptedSource(script, seed=0))
    assert fired.digest == again.digest
    assert fired.fault_events == again.fault_events


# -- finding and shrinking the seeded bug ---------------------------------------------


@pytest.fixture(scope="module")
def race_report():
    return sched.explore(race_scenario(), mode="dpor", depth=12)


def test_explorer_finds_schedule_dependent_leak(race_report):
    assert not race_report.ok
    run = race_report.counterexample_run()
    assert run is not None and run.violating
    kinds = {breach.kind for breach in run.breaches}
    assert "isolation" in kinds
    assert any(
        breach.process == "sink" and breach.handle == "secret"
        for breach in run.breaches
    )


def test_exhaustive_agrees_on_the_race(race_report):
    exhaustive = sched.explore(
        race_scenario(), mode="exhaustive", depth=6, max_schedules=5000
    )
    assert not exhaustive.ok
    assert race_report.schedules <= exhaustive.schedules


def test_shrunk_schedule_is_one_minimal(race_report):
    minimized = race_report.minimized
    assert minimized is not None
    scenario = race_scenario()
    assert sched.replay_schedule(scenario, minimized).violating
    # 1-minimality: restoring any single non-default decision to the
    # FIFO default loses the violation, as does any shorter prefix.
    for index, decision in enumerate(minimized):
        if decision == 0:
            continue
        trial = list(minimized)
        trial[index] = 0
        assert not sched.replay_schedule(scenario, trial).violating
    for cut in range(len(minimized)):
        assert not sched.replay_schedule(scenario, minimized[:cut]).violating


def test_counterexample_replays_byte_identically(race_report, tmp_path):
    scenario = race_scenario()
    paths = sched.write_counterexample(race_report, scenario, tmp_path)
    schedule_path = [p for p in paths if p.name.endswith(".schedule.json")][0]
    plan_path = [p for p in paths if p.name.endswith(".faultplan.json")][0]
    doc = json.loads(schedule_path.read_text())
    assert doc["schema"] == "schedule/v1"
    assert json.loads(plan_path.read_text())["schema"] == "faultplan/v1"
    decisions = sched.load_schedule(schedule_path)
    first = sched.replay_schedule(scenario, decisions)
    second = sched.replay_schedule(scenario, decisions)
    assert first.violating
    assert first.digest == second.digest
    assert first.digest == race_report.minimized_run.digest


def test_schedule_file_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "schedule/v1", "decisions": [1, -2]}))
    with pytest.raises(sched.SchedError):
        sched.load_schedule(bad)
    bad.write_text(json.dumps({"schema": "nope/v1", "decisions": []}))
    with pytest.raises(sched.SchedError):
        sched.load_schedule(bad)


# -- DPOR vs exhaustive on the clean fixtures -----------------------------------------


def test_request_mix_clean_and_dpor_reduction():
    """The acceptance bar: DPOR exhaustively verifies the OKWS request
    mix at bounded depth with zero violations, agrees with --exhaustive,
    and explores at least 10x fewer schedules."""
    depth = 4
    dpor = sched.explore(mix_scenario(), mode="dpor", depth=depth)
    exhaustive = sched.explore(
        mix_scenario(), mode="exhaustive", depth=depth, max_schedules=50_000
    )
    assert dpor.ok and dpor.complete
    assert exhaustive.ok and exhaustive.complete
    assert not dpor.dead_edges and not exhaustive.dead_edges
    assert dpor.schedules * 10 <= exhaustive.schedules


def test_clean_site_clean_under_exploration():
    scenario = sched.scenario_from_topology(
        load_topology(TOPOLOGIES / "clean_site.json")
    )
    report = sched.explore(scenario, mode="dpor", depth=6)
    assert report.ok and report.complete
    assert not report.dead_edges  # every covered edge delivered somewhere


def test_leaky_site_leak_is_schedule_dependent():
    """The animated leaky site is clean under FIFO — only exploration
    exposes the interleaving where the contaminated front end forwards."""
    scenario = sched.scenario_from_topology(
        load_topology(TOPOLOGIES / "leaky_site.json")
    )
    assert not scenario.execute().violating
    report = sched.explore(scenario, mode="dpor", depth=6)
    assert not report.ok
    kinds = {b.kind for b in report.counterexample_run().breaches}
    assert "isolation" in kinds


def test_okws_live_topology_bounded_dpor_clean():
    scenario = sched.okws_scenario(max_steps=4000)
    report = sched.explore(
        scenario, mode="dpor", depth=4, max_schedules=500, time_budget=60
    )
    assert report.ok
    assert report.schedules >= 2  # the bound left room to actually branch


def test_budget_truncation_is_reported():
    report = sched.explore(
        mix_scenario(), mode="exhaustive", depth=4, max_schedules=3
    )
    assert not report.complete
    # A truncated clean exploration must not claim edge liveness.
    assert not report.dead_edges


# -- the PR 4 timer/recv race, pinned under adversarial wake orders -------------------


def timer_scenario():
    """A sender races a receiver's timeout: the send always lands before
    the deadline, so under *every* wake order the receiver must get the
    message — due timers retry blocked receives before timing out."""

    handle = 0x3001

    def factory(kernel, observer):
        from repro.core.chunks import ChunkedLabel
        from repro.kernel.ports import Port

        results = []

        def receiver(ctx):
            msg = yield Recv(port=handle, timeout=5_000_000)
            results.append(msg.payload if msg is not None else None)

        receiver_proc = kernel.spawn(receiver, "receiver")
        kernel.ports[handle] = Port(
            handle=handle,
            label=ChunkedLabel.from_label(Label.top()),
            owner=receiver_proc.key,
        )
        receiver_proc.owned_ports.add(handle)

        def sender(ctx):
            yield Send(handle, "ping")
            yield Compute(20_000_000)  # drive the clock past the deadline

        kernel.spawn(sender, "sender")
        kernel.scenario_results = results
        return None

    def invariant(kernel):
        if kernel.scenario_results != ["ping"]:
            return (
                "timeout raced a queued message: receiver saw "
                f"{kernel.scenario_results!r}, wanted ['ping']"
            )
        return None

    return sched.Scenario("timer-race", factory, invariant=invariant)


def test_wake_order_is_a_choice_point():
    run = timer_scenario().execute()
    assert not run.violating
    wake = [p for p in run.decisions if p.kind == "wake"]
    assert wake, "a due timer with runnable tasks must branch the wake order"
    assert wake[0].options == ("timers", "task")


def test_timeout_never_beats_queued_message():
    report = sched.explore(timer_scenario(), mode="exhaustive", depth=8)
    assert report.ok, (
        report.counterexample_run().breaches if not report.ok else ""
    )
    assert report.complete
    assert report.schedules > 1  # wake orders and picks actually varied


def test_deferred_wake_still_delivers():
    scenario = timer_scenario()
    base = scenario.execute()
    script = [
        1 if point.kind == "wake" else point.chosen for point in base.decisions
    ]
    run = scenario.execute(ScriptedSource(script, seed=0))
    assert not run.violating
    assert any(p.kind == "wake" and p.chosen == 1 for p in run.decisions)


# -- report formats and CLI -----------------------------------------------------------


def test_report_json_and_sarif(race_report):
    doc = race_report.to_json()
    assert doc["schema"] == "sched-report/v1"
    assert doc["ok"] is False
    assert doc["minimized"] == race_report.minimized
    sarif = sched_sarif(race_report)
    results = sarif["runs"][0]["results"]
    assert results, "a violating report must produce SARIF results"
    assert results[0]["level"] == "error"
    assert results[0]["properties"]["schedule"] == race_report.minimized
    assert sarif["runs"][0]["tool"]["driver"]["name"] == "asbsched"


def test_sarif_clean_report_has_no_results():
    report = sched.explore(mix_scenario(), mode="dpor", depth=3)
    assert report.ok
    assert sched_sarif(report)["runs"][0]["results"] == []


def test_cli_explore_race_exits_one_and_writes(tmp_path, capsys):
    code = cli_main(
        [
            "explore",
            "--topology",
            str(TOPOLOGIES / "race_site.json"),
            "--depth",
            "12",
            "--out",
            str(tmp_path),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "minimized schedule" in out
    schedule = tmp_path / "race-site.schedule.json"
    assert schedule.exists()
    assert (tmp_path / "race-site.faultplan.json").exists()

    replay_code = cli_main(
        [
            "explore",
            "--topology",
            str(TOPOLOGIES / "race_site.json"),
            "--replay",
            str(schedule),
        ]
    )
    assert replay_code == 1
    assert "VIOLATING" in capsys.readouterr().out


def test_cli_explore_clean_exits_zero_sarif(capsys):
    code = cli_main(
        [
            "explore",
            "--topology",
            str(TOPOLOGIES / "okws_request_mix.json"),
            "--depth",
            "4",
            "--format",
            "sarif",
        ]
    )
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"] == []


def test_cli_explore_usage_errors(capsys):
    assert cli_main(["explore"]) == 2
    assert (
        cli_main(
            ["explore", "--topology", "x.json", "--okws"]
        )
        == 2
    )
    assert cli_main(["explore", "--topology", "/does/not/exist.json"]) == 2
