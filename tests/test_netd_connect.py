"""Outgoing (loopback) connections through netd: two Asbestos applications
talking TCP under full label control (paper Section 7.7: "An application
can send a message to netd to request an outgoing connection to a remote
host or to listen for incoming connections")."""

import pytest

from repro.core.labels import Label
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel import NewPort, Recv, Send, SetPortLabel
from repro.kernel.clock import NETWORK
from repro.servers.netd import Wire, netd_body


@pytest.fixture
def net(kernel):
    wire = Wire()
    proc = kernel.spawn(netd_body, "netd", component=NETWORK, env={"wire": wire})
    kernel.run()
    return proc, wire


def test_loopback_connect_and_exchange(kernel, net):
    netd, wire = net
    server_log, client_log = [], []

    def server(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["netd_port"], P.request(P.LISTEN, port=7000, notify=port))
        accept = yield Recv(port=port)
        conn = accept.payload["conn"]
        chan = yield from Channel.open()
        r = yield from chan.call(conn, P.request(P.READ))
        server_log.append(r.payload["data"])
        yield Send(conn, P.request(P.WRITE, data=b"pong"))

    def client(ctx):
        chan = yield from Channel.open()
        r = yield from chan.call(
            ctx.env["netd_port"], P.request(P.CONNECT, host="localhost", port=7000)
        )
        conn = r.payload["conn"]
        yield Send(conn, P.request(P.WRITE, data=b"ping"))
        reply = yield from chan.call(conn, P.request(P.READ))
        client_log.append(reply.payload["data"])

    kernel.spawn(server, "server", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    kernel.spawn(client, "client", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    assert server_log == [b"ping"]
    assert client_log == [b"pong"]


def test_connect_to_unlistened_port_fails(kernel, net):
    netd, wire = net
    result = []

    def client(ctx):
        chan = yield from Channel.open()
        r = yield from chan.call(
            ctx.env["netd_port"], P.request(P.CONNECT, host="localhost", port=9999)
        )
        result.append(r.payload)

    kernel.spawn(client, "client", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    assert P.is_error(result[0])


def test_connect_to_remote_host_unroutable(kernel, net):
    netd, wire = net
    result = []

    def client(ctx):
        chan = yield from Channel.open()
        r = yield from chan.call(
            ctx.env["netd_port"], P.request(P.CONNECT, host="203.0.113.9", port=80)
        )
        result.append(r.payload)

    kernel.spawn(client, "client", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    assert P.is_error(result[0])


def test_loopback_carries_taint_policy(kernel, net):
    # A tainted client side: the server only receives the data once the
    # connection is tainted appropriately, and a third party cannot use
    # either side's port.
    netd, wire = net
    server_seen = []

    def server(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["netd_port"], P.request(P.LISTEN, port=7000, notify=port))
        accept = yield Recv(port=port)
        ctx.env["server_conn"] = accept.payload["conn"]
        chan = yield from Channel.open()
        r = yield from chan.call(accept.payload["conn"], P.request(P.READ))
        server_seen.append(r.payload["data"])

    srv = kernel.spawn(server, "server", env={"netd_port": netd.env["netd_port"]})
    kernel.run()

    def client(ctx):
        chan = yield from Channel.open()
        r = yield from chan.call(
            ctx.env["netd_port"], P.request(P.CONNECT, host="localhost", port=7000)
        )
        ctx.env["client_conn"] = r.payload["conn"]
        yield Send(r.payload["conn"], P.request(P.WRITE, data=b"hello"))

    cli = kernel.spawn(client, "client", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    assert server_seen == [b"hello"]

    # A stranger without the uC capability cannot write either side.
    before = kernel.drop_log.count("label-check")

    def stranger(ctx):
        yield Send(cli.env["client_conn"], P.request(P.WRITE, data=b"hijack"))
        yield Send(srv.env["server_conn"], P.request(P.WRITE, data=b"hijack"))

    kernel.spawn(stranger, "stranger")
    kernel.run()
    assert kernel.drop_log.count("label-check") == before + 2
