"""Differential conformance suite for the interned-label fast path.

The :class:`~repro.core.interning.LabelOpCache` serves the three Figure 4
hot operations from a bounded LRU keyed on ⋆-factored interned ids.  The
factorings (theorems T1–T4 in the ``repro.core.interning`` docstring) are
exactly the kind of optimisation that silently corrupts an IFC kernel if
any side condition is wrong, so this suite proves the fast path against
the *naive reference semantics* (plain :class:`~repro.core.labels.Label`
lattice operators) three ways:

1. Hypothesis-generated label algebras — ⋆-biased operands, probed twice
   so both the miss path (compute + store) and the hit path (probe +
   overlay) are compared against the reference on every example;
2. a deterministic seeded sweep of mixed operations through one tiny
   shared cache, forcing thousands of evictions and cross-operation key
   traffic;
3. full OKWS workload replays on the live kernel — every delivery
   re-derived from the reference operators, plus bit-comparability,
   sanitizer-cleanliness, metrics reconciliation and a cycle-count
   sanity check against the uncached kernel.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import labelops as lo
from repro.core.chunks import ChunkedLabel, OpStats
from repro.core.interning import InternTable, LabelOpCache, global_intern_table
from repro.core.labels import Label
from repro.core.levels import ALL_LEVELS, L1, L2, L3, STAR
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.okws import ServiceConfig, launch
from repro.okws.services import (
    notes_handler,
    profile_declassifier_handler,
    profile_handler,
    session_cache_handler,
)
from repro.sim.runner import build_echo_site
from repro.sim.workload import HttpClient

# ⋆-heavy operands are what the factoring theorems fire on — bias the
# generator so most examples exercise the stripped-key paths, not the
# exact-key fallback.
star_biased = st.sampled_from(ALL_LEVELS + (STAR, STAR))
labels = st.builds(
    Label,
    st.dictionaries(st.integers(min_value=0, max_value=80), star_biased, max_size=25),
    default=star_biased,
)


def _c(label: Label) -> ChunkedLabel:
    return ChunkedLabel.from_label(label)


def _cache(size: int = 8) -> LabelOpCache:
    return LabelOpCache(size=size, table=global_intern_table())


# -- 1. property tests: cache == reference on miss AND on hit -----------------------


@given(labels, labels, labels, labels, labels)
@settings(max_examples=2500)
def test_cached_check_send_matches_reference(es, qr, dr, v, pr):
    cache = _cache()
    args = tuple(_c(x) for x in (es, qr, dr, v, pr))
    want = lo.check_send_reference(es, qr, dr, v, pr)
    got_miss, hit1 = cache.check_send(*args, OpStats())
    got_hit, hit2 = cache.check_send(*args, OpStats())
    assert got_miss == want
    assert got_hit == want
    assert (hit1, hit2) == (False, True)


@given(labels, labels, labels)
@settings(max_examples=2500)
def test_cached_apply_send_effects_matches_reference(qs, es, ds):
    cache = _cache()
    want = lo.apply_send_effects_reference(qs, es, ds)
    got_miss, hit1 = cache.apply_send_effects(_c(qs), _c(es), _c(ds), OpStats())
    got_hit, hit2 = cache.apply_send_effects(_c(qs), _c(es), _c(ds), OpStats())
    assert got_miss.to_label() == want
    assert got_hit.to_label() == want
    assert (hit1, hit2) == (False, True)


@given(labels, labels)
@settings(max_examples=2500)
def test_cached_raise_receive_matches_reference(qr, dr):
    cache = _cache()
    want = lo.raise_receive_reference(qr, dr)
    got_miss, hit1 = cache.raise_receive(_c(qr), _c(dr), OpStats())
    got_hit, hit2 = cache.raise_receive(_c(qr), _c(dr), OpStats())
    assert got_miss.to_label() == want
    assert got_hit.to_label() == want
    assert (hit1, hit2) == (False, True)


# One cache shared across all examples: keys from earlier examples stay
# resident (or get evicted), so ⋆-factored keys from *different* operand
# tuples must never alias to the wrong result.
_SHARED = LabelOpCache(size=16, table=global_intern_table())


@given(labels, labels, labels, labels, labels)
@settings(max_examples=2500)
def test_shared_tiny_cache_never_serves_a_wrong_result(a, b, c, d, e):
    assert _SHARED.check_send(
        _c(a), _c(b), _c(c), _c(d), _c(e), OpStats()
    )[0] == lo.check_send_reference(a, b, c, d, e)
    assert _SHARED.apply_send_effects(_c(a), _c(b), _c(c), OpStats())[
        0
    ].to_label() == lo.apply_send_effects_reference(a, b, c)
    assert _SHARED.raise_receive(_c(d), _c(e), OpStats())[
        0
    ].to_label() == lo.raise_receive_reference(d, e)


# -- 2. targeted theorem probes (the shapes the OKWS hot path produces) -------------


def test_t1_grant_handle_survives_the_stripped_computation():
    # ES holds ⋆(h) and DS *grants* ⋆(h): the full op yields ⋆ at h, but a
    # computation on ES's core would contaminate h to ES's default.  The
    # factoring must route h through the star overlay instead.
    h = 7
    qs = Label({}, L2)
    es = Label({h: STAR}, L1)
    ds = Label({h: STAR}, L3)
    want = lo.apply_send_effects_reference(qs, es, ds)
    assert want(h) == STAR
    cache = _cache()
    for expected_hit in (False, True):
        got, hit = cache.apply_send_effects(_c(qs), _c(es), _c(ds), OpStats())
        assert got.to_label() == want
        assert hit == expected_hit


def test_t3_taint_punches_through_a_held_star():
    # DR explicitly raises a handle the receiver holds at ⋆.  The overlay
    # must *not* force the handle back to ⋆ — the raise wins.
    h = 11
    qr = Label({h: STAR, 40: L2}, L1)
    dr = Label({h: L2}, STAR)
    want = qr | dr
    assert want(h) == L2
    cache = _cache()
    for expected_hit in (False, True):
        got, hit = cache.raise_receive(_c(qr), _c(dr), OpStats())
        assert got.to_label() == want
        assert hit == expected_hit


def test_t4_fresh_pin_capability_check_hits_across_connections():
    # The per-connection shape: a pinned-low port label pR(u) = 0 guarded
    # by the sender's held ⋆(u), where u is a *fresh* handle every time.
    # T4 abstracts the pin to its bare level, so the second connection
    # must HIT even though its handle differs — and both verdicts must
    # match the reference on their own exact operands.
    qr, dr, v = Label({}, L2), Label({}, STAR), Label({}, L3)
    cache = _cache()
    hits = []
    for conn in (500, 501, 502):
        es = Label({conn: STAR}, L1)
        pr = Label({conn: 0}, L3)
        want = lo.check_send_reference(es, qr, dr, v, pr)
        assert want  # the capability makes the send admissible
        got, hit = cache.check_send(_c(es), _c(qr), _c(dr), _c(v), _c(pr), OpStats())
        assert got == want
        hits.append(hit)
    assert hits == [False, True, True]


def test_t4_denied_send_is_not_confused_with_the_admissible_one():
    # Same pinned-low port label, but the sender does NOT hold the ⋆: the
    # verdict flips to False and must not be served from the T4 key of
    # the admissible variant (the pin stays concrete in this key).
    qr, dr, v = Label({}, L2), Label({}, STAR), Label({}, L3)
    cache = _cache()
    conn = 600
    es_cap = Label({conn: STAR}, L1)
    es_plain = Label({}, L1)
    pr = Label({conn: 0}, L3)
    ok, _ = cache.check_send(_c(es_cap), _c(qr), _c(dr), _c(v), _c(pr), OpStats())
    denied, _ = cache.check_send(_c(es_plain), _c(qr), _c(dr), _c(v), _c(pr), OpStats())
    assert ok is True
    assert denied is False
    assert denied == lo.check_send_reference(es_plain, qr, dr, v, pr)


# -- 3. seeded mixed-operation sweep under heavy eviction ---------------------------


def test_seeded_differential_sweep_under_eviction():
    """10k+ mixed operations through one 64-entry cache: every result is
    compared against the reference, and the LRU must actually churn."""
    rng = random.Random(0xA5BE5705)
    pool = ALL_LEVELS + (STAR, STAR, STAR)

    def rand_label():
        entries = {
            rng.randrange(0, 120): rng.choice(pool)
            for _ in range(rng.randrange(0, 18))
        }
        return Label(entries, rng.choice(pool))

    table = InternTable()
    cache = LabelOpCache(size=64, table=table)
    for i in range(3500):
        es, qr, dr, v, pr = (rand_label() for _ in range(5))
        got, _ = cache.check_send(
            _c(es), _c(qr), _c(dr), _c(v), _c(pr), OpStats()
        )
        assert got == lo.check_send_reference(es, qr, dr, v, pr), (i, "check")
        got, _ = cache.apply_send_effects(_c(qr), _c(es), _c(dr), OpStats())
        assert got.to_label() == lo.apply_send_effects_reference(qr, es, dr), (
            i,
            "effects",
        )
        got, _ = cache.raise_receive(_c(v), _c(pr), OpStats())
        assert got.to_label() == lo.raise_receive_reference(v, pr), (i, "raise")
    assert cache.lookups == 10_500
    assert cache.evictions > 5_000  # the sweep really did thrash the LRU


# -- 4. full OKWS replays on the live kernel ----------------------------------------


class InternedCheckingKernel(Kernel):
    """An interning kernel whose every delivery is re-derived from the
    naive reference semantics — cache hits included."""

    checked = 0

    def __init__(self):
        super().__init__(
            config=KernelConfig(intern_labels=True, labelop_cache_size=256)
        )

    def _try_deliver(self, task, entry, qmsg):
        es = qmsg.effective_send.to_label()
        qr = task.receive_label.to_label()
        qs = task.send_label.to_label()
        dr = qmsg.decontaminate_receive.to_label()
        ds = qmsg.decontaminate_send.to_label()
        v = qmsg.verify.to_label()
        pr = entry.label.to_label()

        expect_ok = lo.check_send_reference(es, qr, dr, v, pr) and dr <= pr
        delivered = super()._try_deliver(task, entry, qmsg)
        assert delivered == expect_ok, (
            f"cached delivery verdict diverged for {qmsg.sender_name} -> {task.name}"
        )
        if delivered:
            assert task.send_label.to_label() == lo.apply_send_effects_reference(
                qs, es, ds
            ), f"cached send-label effect diverged at {task.name}"
            assert task.receive_label.to_label() == (qr | dr), (
                f"cached receive-label effect diverged at {task.name}"
            )
        InternedCheckingKernel.checked += 1
        return delivered


def _run_okws_workload(kernel, network="classic"):
    site = launch(
        kernel=kernel,
        services=[
            ServiceConfig("cache", session_cache_handler),
            ServiceConfig("notes", notes_handler),
            ServiceConfig("profile", profile_handler),
            ServiceConfig("publish", profile_declassifier_handler, declassifier=True),
        ],
        users=[("alice", "pw-a"), ("bob", "pw-b"), ("carol", "pw-c")],
        schema=[
            "CREATE TABLE notes (author TEXT, text TEXT)",
            "CREATE TABLE profiles (owner TEXT, bio TEXT)",
        ],
        network=network,
    )
    client = HttpClient(site)
    for user, pw in (("alice", "pw-a"), ("bob", "pw-b"), ("carol", "pw-c")):
        client.request(user, pw, "cache", body=f"{user}-state".encode())
        client.request(user, pw, "notes", body=f"{user}-note", args={"op": "add"})
        client.request(user, pw, "notes", args={"op": "list"})
        client.request(user, pw, "profile", body=f"{user}-bio", args={"op": "set"})
    client.request("alice", "pw-a", "publish")
    client.request("bob", "pw-b", "profile", args={"op": "get"})
    client.request("alice", "pw-a", "cache", body=b"second-visit")
    return site


@pytest.mark.parametrize("network", ["classic", "decomposed"])
def test_okws_replay_every_cached_decision_matches_reference(network):
    InternedCheckingKernel.checked = 0
    kernel = InternedCheckingKernel()
    _run_okws_workload(kernel, network)
    assert InternedCheckingKernel.checked > 300
    # The replay must actually have exercised the cache, hits included.
    assert kernel.labelop_cache.hits > 100
    assert kernel.labelop_cache.misses > 0


def test_okws_replay_is_bit_identical_to_the_uncached_kernel():
    def replay(config):
        site = build_echo_site(12, config=config)
        client = HttpClient(site)
        reqs = [(f"u{i}", f"pw{i}", "echo", None, {"length": 11}) for i in range(12)]
        responses = []
        for _ in range(2):
            responses.extend(client.run_batch(reqs, concurrency=4))
        return site.kernel, responses

    plain_kernel, plain_res = replay(KernelConfig())
    cached_kernel, cached_res = replay(
        KernelConfig(intern_labels=True, labelop_cache_size=1 << 12)
    )
    assert [r.payload for r in plain_res] == [r.payload for r in cached_res]
    assert plain_kernel.drop_log.records == cached_kernel.drop_log.records
    # Every surviving task carries bit-identical labels.
    assert set(plain_kernel.tasks) == set(cached_kernel.tasks)
    for key, task in plain_kernel.tasks.items():
        other = cached_kernel.tasks[key]
        assert task.send_label.to_label() == other.send_label.to_label(), key
        assert task.receive_label.to_label() == other.receive_label.to_label(), key


def test_okws_replay_is_sanitizer_clean_with_interning():
    kernel = Kernel(
        config=KernelConfig(
            intern_labels=True,
            labelop_cache_size=256,
            sanitize=True,
            sanitize_strict=True,
        )
    )
    _run_okws_workload(kernel)
    assert kernel.sanitizer is not None
    assert kernel.sanitizer.violations == []
    assert kernel.sanitizer.checked_sends > 0
    assert kernel.labelop_cache.hits > 0


# -- 5. metrics reconciliation and the cycle-model sanity check ---------------------


def test_cache_counters_reconcile_with_opstats():
    # Every cache hit avoided exactly one labelops call: the uncached
    # kernel's operation count equals the cached kernel's plus its hits.
    def run(config):
        site = build_echo_site(20, config=config)
        client = HttpClient(site)
        reqs = [(f"u{i}", f"pw{i}", "echo", None, {"length": 11}) for i in range(20)]
        for _ in range(2):
            client.run_batch(reqs, concurrency=8)
        return site.kernel

    plain = run(KernelConfig())
    cached = run(KernelConfig(intern_labels=True, labelop_cache_size=1 << 12))
    cache = cached.labelop_cache
    assert cache.lookups == cache.hits + cache.misses
    assert cache.hits > 0
    assert (
        plain.label_stats.operations
        == cached.label_stats.operations + cache.hits
    )

    from repro.obs.metrics import kernel_snapshot

    snap = kernel_snapshot(cached)
    assert snap["labelop_cache"] == cache.counters()
    assert snap["config"]["intern_labels"] is True
    assert kernel_snapshot(plain)["labelop_cache"] is None


def test_interning_reduces_modeled_kernel_cycles():
    def warm_window_cycles(config):
        site = build_echo_site(60, config=config)
        client = HttpClient(site)
        reqs = [(f"u{i}", f"pw{i}", "echo", None, {"length": 11}) for i in range(60)]
        for _ in range(2):
            client.run_batch(reqs, concurrency=16)
        snapshot = site.kernel.clock.snapshot()
        client.run_batch(reqs, concurrency=16)
        return sum(site.kernel.clock.delta(snapshot).values())

    plain = warm_window_cycles(KernelConfig())
    cached = warm_window_cycles(
        KernelConfig(intern_labels=True, labelop_cache_size=1 << 16)
    )
    assert cached < plain
