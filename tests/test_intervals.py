"""Boundary cases and concrete-semantics properties for the abstract
label-interval domain behind asblint (``repro.analysis.intervals``)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.intervals import (
    AbstractLabel,
    AbstractState,
    IV_L1,
    IV_L2,
    IV_STAR,
    Interval,
    TOP,
    check_send_interval,
    exact,
    interval_for_level,
)
from repro.analysis.model import LabelStore
from repro.core.labels import Label
from repro.core.levels import L0, L1, L2, L3, STAR

LEVELS = [STAR, L0, L1, L2, L3]
levels = st.sampled_from(LEVELS)
HANDLES = [0x10, 0x11, 0x12]


# -- Interval arithmetic at the boundaries -----------------------------------------


def test_interval_validation():
    with pytest.raises(ValueError):
        Interval(L2, L1)
    with pytest.raises(ValueError):
        Interval(STAR - 1, L0)
    assert Interval(STAR, L3) == TOP


def test_star_level_joins():
    # ⋆ = -1 is below every level: joining with ⋆ is the identity,
    # meeting with ⋆ collapses to ⋆ — the privilege absorbs.
    assert IV_STAR.join(exact(L3)) == exact(L3)
    assert IV_STAR.join(IV_STAR) == IV_STAR
    assert IV_STAR.meet(exact(L3)) == IV_STAR
    assert exact(L0).join(IV_STAR) == exact(L0)
    # A maybe-⋆ interval keeps ⋆ in the meet's lower bound.
    assert Interval(STAR, L2).meet(exact(L1)) == Interval(STAR, L1)
    assert Interval(STAR, L2).join(exact(L1)) == Interval(L1, L2)


def test_hull_versus_join():
    # hull is control-flow merge (may be either value); join is the ⊔ of
    # two values.  They differ below: max(0,2)=2 cannot be 0.
    a, b = exact(L0), exact(L2)
    assert a.hull(b) == Interval(L0, L2)
    assert a.join(b) == exact(L2)


def test_send_default_1_versus_receive_default_2():
    # Fresh-process defaults: PS {1} must pass a fresh receiver's QR {2}
    # but a self-raised {3} must not.
    fresh = AbstractState.fresh_process()
    assert fresh.ps.default == IV_L1
    assert fresh.pr.default == IV_L2
    qr = AbstractLabel({}, IV_L2)
    ok = check_send_interval(
        fresh.ps, qr, AbstractLabel.bottom(), AbstractLabel.top(), AbstractLabel.top()
    )
    assert not ok.never_passes
    raised = AbstractLabel({}, exact(L3))
    dead = check_send_interval(
        raised, qr, AbstractLabel.bottom(), AbstractLabel.top(), AbstractLabel.top()
    )
    assert dead.never_passes
    assert dead.witness == "<default>"
    assert (dead.lhs_lo, dead.rhs_hi) == (L3, L2)


def test_widening_converges_and_preserves_star():
    label = AbstractLabel({"t": exact(L2), "p": IV_STAR}, IV_L1)
    once = label.widened()
    # ⋆ entries are fixed points of the send effect; everything else may
    # have risen (or been decontaminated) arbitrarily.
    assert once.at("p") == IV_STAR
    assert once.at("t") == TOP
    assert once.blurry
    # Widening is idempotent — the fixpoint is reached in one step, so
    # the flow analysis cannot oscillate on receive loops.
    assert once.widened() == once
    assert AbstractState(label, label).after_receive().after_receive() == \
        AbstractState(label, label).after_receive()


def test_unknown_label_stays_sound_at_unseen_tokens():
    blurry = AbstractLabel.unknown()
    assert blurry.at("anything") == TOP
    assert not blurry.definitely_not_star("anything")
    assert not AbstractState.unknown_history().ps.definitely_not_star("x")
    assert AbstractState.fresh_process().ps.definitely_not_star("x")


# -- hypothesis: the abstraction agrees with the concrete Label semantics -----------


def concrete_labels():
    return st.builds(
        Label,
        st.dictionaries(st.sampled_from(HANDLES), levels, max_size=3),
        levels,
    )


def abstract_exactly(label: Label) -> AbstractLabel:
    return AbstractLabel(
        {str(h): interval_for_level(label(h)) for h in HANDLES},
        interval_for_level(label.default),
    )


@settings(max_examples=200, deadline=None)
@given(concrete_labels(), concrete_labels())
def test_abstract_join_meet_match_concrete_pointwise(a, b):
    aa, ab = abstract_exactly(a), abstract_exactly(b)
    joined, met = aa.join(ab), aa.meet(ab)
    for h in HANDLES:
        assert joined.at(str(h)) == interval_for_level(max(a(h), b(h)))
        assert met.at(str(h)) == interval_for_level(min(a(h), b(h)))
    assert joined.default == interval_for_level(max(a.default, b.default))
    assert met.default == interval_for_level(min(a.default, b.default))


@settings(max_examples=200, deadline=None)
@given(
    concrete_labels(), concrete_labels(), concrete_labels(),
    concrete_labels(), concrete_labels(),
)
def test_never_passes_is_sound_against_the_kernel_check(es, qr, dr, v, pr):
    """If the abstract evaluation proves the Figure 4 check cannot pass,
    the concrete (fused, memoized) kernel check must indeed fail — on
    exact intervals the abstract verdict may not cry wolf."""
    verdict = check_send_interval(
        abstract_exactly(es), abstract_exactly(qr), abstract_exactly(dr),
        abstract_exactly(v), abstract_exactly(pr),
    )
    store = LabelStore()
    passes = store.check(
        store.intern(es), store.intern(qr), store.intern(dr),
        store.intern(v), store.intern(pr),
    )
    if verdict.never_passes:
        assert not passes
    # On exact intervals the converse holds too: a concrete failure has
    # an entry witness the three-valued evaluation also sees.
    if not passes:
        assert verdict.never_passes


@settings(max_examples=100, deadline=None)
@given(concrete_labels(), concrete_labels())
def test_hull_contains_both_operands(a, b):
    hulled = abstract_exactly(a).hull(abstract_exactly(b))
    for h in HANDLES:
        iv = hulled.at(str(h))
        assert iv.lo <= a(h) <= iv.hi
        assert iv.lo <= b(h) <= iv.hi
