"""The ``wal/v1`` record format: framing, torn tails, statement codec."""

from __future__ import annotations

import pytest

from repro.db import sql as S
from repro.store import wal
from repro.store.wal import RowTaint


def _log(*payloads):
    return b"".join(wal.frame(p) for p in payloads)


def _tx(tx, stmt="INSERT INTO t (a) VALUES (?)", params=(1,), **kw):
    kw.setdefault("owner", 0)
    kw.setdefault("taint", None)
    kw.setdefault("declass", False)
    return [
        wal.begin_record(tx),
        wal.write_record(tx, S.parse(stmt), tuple(params), **kw),
        wal.commit_record(tx),
    ]


def test_roundtrip_all_record_types():
    taint = RowTaint(handles=(7, 3), level=3)
    data = _log(
        wal.begin_record(1),
        wal.write_record(
            1, S.parse("INSERT INTO t (a) VALUES (?)"), (5,), 2, taint, False
        ),
        wal.commit_record(1),
        wal.checkpoint_record({"t": {"columns": [["a", "INTEGER"]], "rows": []}}, {}),
    )
    scanned = wal.scan(data)
    assert not scanned.torn
    assert [r.type for r in scanned.records] == ["begin", "write", "commit", "checkpoint"]
    write = scanned.records[1].payload
    assert write["owner"] == 2
    # Taint handles are persisted sorted, so the encoding is canonical.
    assert write["taint"] == {"handles": [3, 7], "level": 3}
    assert RowTaint.from_json(write["taint"]) == RowTaint(handles=(3, 7), level=3)
    assert RowTaint.from_json(None) is None


def test_framing_is_deterministic():
    payload = {"t": "begin", "tx": 9}
    assert wal.frame(payload) == wal.frame({"tx": 9, "t": "begin"})


@pytest.mark.parametrize(
    "stmt,params",
    [
        ("CREATE TABLE t (a INTEGER, b TEXT)", ()),
        ("INSERT INTO t (a, b) VALUES (?, ?)", (1, "x")),
        ("UPDATE t SET b = ? WHERE a = ?", ("y", 1)),
        ("DELETE FROM t WHERE a = ?", (1,)),
    ],
)
def test_statement_codec_roundtrip(stmt, params):
    ast = S.parse(stmt)
    doc = wal.stmt_to_json(ast)
    assert wal.stmt_from_json(doc) == ast


def test_select_is_not_loggable():
    with pytest.raises(wal.WalError):
        wal.stmt_to_json(S.parse("SELECT a FROM t"))


@pytest.mark.parametrize("cut", [1, 4, 7, 8, 9])
def test_torn_tail_stops_the_scan(cut):
    """Any prefix of the final record — inside the header, the CRC, or
    the payload — is a torn tail, not an error."""
    data = _log(*_tx(1))
    records = wal.scan(data).records
    last = records[-1]
    torn = data[: last.offset + min(cut, last.length - 1)]
    scanned = wal.scan(torn)
    assert len(scanned.records) == len(records) - 1
    assert scanned.clean_bytes == last.offset
    assert scanned.torn
    assert scanned.torn_bytes == len(torn) - last.offset


def test_corrupt_tail_byte_reads_as_torn():
    data = _log(*_tx(1))
    flipped = data[:-1] + bytes([data[-1] ^ 0xFF])
    scanned = wal.scan(flipped)
    assert len(scanned.records) == 2  # the commit no longer CRCs
    assert scanned.torn


def test_well_framed_garbage_is_an_error_not_a_torn_tail():
    bad = wal._HEADER.pack(4, __import__("zlib").crc32(b"[1]\n")) + b"[1]\n"
    with pytest.raises(wal.WalError):
        wal.scan(_log(wal.begin_record(1)) + bad)


def test_unknown_record_type_is_an_error():
    with pytest.raises(wal.WalError):
        wal.scan(wal.frame({"t": "vacuum"}))


def test_scan_empty_image():
    scanned = wal.scan(b"")
    assert scanned.records == ()
    assert not scanned.torn
