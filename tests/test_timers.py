"""The kernel timer queue: ``Recv(timeout=...)`` and ``Deadline``.

Timers run on *virtual* time — at quiescence the kernel jumps the clock
to the next deadline instead of spinning — so timeout behaviour is as
deterministic as everything else in the simulation.
"""

from repro.core.labels import Label
from repro.kernel import Deadline, NewPort, Recv, Send, SetPortLabel


def open_port():
    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    return port


def test_recv_timeout_returns_none(kernel):
    results = []

    def waiter(ctx):
        port = yield from open_port()
        start = ctx.now
        msg = yield Recv(port=port, timeout=1_000_000)
        results.append((msg, ctx.now - start))

    kernel.spawn(waiter, "waiter")
    kernel.run()
    msg, elapsed = results[0]
    assert msg is None
    assert elapsed >= 1_000_000


def test_recv_timeout_not_taken_when_message_ready(kernel):
    """A queued deliverable message always beats a due timer.

    The receiver parks on a control port (no timeout, so quiescence
    cannot fire anything) until the data message is already queued, then
    does the timed receive — which must return the message, not None.
    """
    results = []

    def receiver(ctx):
        data = yield from open_port()
        ctrl = yield from open_port()
        ctx.env["data"], ctx.env["ctrl"] = data, ctrl
        yield Recv(port=ctrl)  # rendezvous: data is queued by now
        msg = yield Recv(port=data, timeout=500_000)
        results.append(msg.payload if msg is not None else None)

    r = kernel.spawn(receiver, "receiver")
    kernel.run()

    def sender(ctx):
        yield Send(r.env["data"], "made it")
        yield Send(r.env["ctrl"], "go")

    kernel.spawn(sender, "sender")
    kernel.run()
    assert results == ["made it"]


def test_recv_timeout_message_after_sender_sleeps(kernel):
    """A sender that wakes from its own Deadline *before* the receiver's
    timeout gets its message through: idle-time jumps go to the earliest
    timer, not straight to the receiver's."""
    results = []

    def receiver(ctx):
        data = yield from open_port()
        ctrl = yield from open_port()
        ctx.env["data"], ctx.env["ctrl"] = data, ctrl
        yield Recv(port=ctrl)
        msg = yield Recv(port=data, timeout=10_000_000)
        results.append(msg.payload if msg is not None else None)

    r = kernel.spawn(receiver, "receiver")
    kernel.run()

    def sleepy_sender(ctx):
        yield Send(r.env["ctrl"], "go")
        yield Deadline(1_000_000)
        yield Send(r.env["data"], "late but in time")

    kernel.spawn(sleepy_sender, "sleepy")
    kernel.run()
    assert results == ["late but in time"]


def test_recv_timeout_expires_before_late_sender(kernel):
    """Symmetric case: the sender sleeps *past* the receiver's timeout,
    so the receive times out first; a later receive picks the message up."""
    results = []

    def receiver(ctx):
        data = yield from open_port()
        ctrl = yield from open_port()
        ctx.env["data"], ctx.env["ctrl"] = data, ctrl
        yield Recv(port=ctrl)
        msg = yield Recv(port=data, timeout=1_000_000)
        results.append(msg)
        msg = yield Recv(port=data, timeout=50_000_000)
        results.append(msg.payload if msg is not None else None)

    r = kernel.spawn(receiver, "receiver")
    kernel.run()

    def very_sleepy(ctx):
        yield Send(r.env["ctrl"], "go")
        yield Deadline(10_000_000)
        yield Send(r.env["data"], "straggler")

    kernel.spawn(very_sleepy, "very-sleepy")
    kernel.run()
    assert results == [None, "straggler"]


def test_deadline_advances_virtual_time(kernel):
    marks = []

    def sleeper(ctx):
        start = ctx.now
        yield Deadline(7_000_000)
        marks.append(ctx.now - start)

    kernel.spawn(sleeper, "sleeper")
    kernel.run()
    assert marks[0] >= 7_000_000


def test_deadlines_fire_in_order(kernel):
    """Independent sleepers wake in deadline order, not spawn order."""
    order = []

    def sleeper(name, cycles):
        def body(ctx):
            yield Deadline(cycles)
            order.append(name)

        return body

    kernel.spawn(sleeper("slow", 9_000_000), "slow")
    kernel.spawn(sleeper("fast", 1_000_000), "fast")
    kernel.spawn(sleeper("medium", 5_000_000), "medium")
    kernel.run()
    assert order == ["fast", "medium", "slow"]


def test_idle_clock_jumps_to_next_timer(kernel):
    """At quiescence the kernel jumps straight to the pending deadline —
    a long sleep costs simulated time, not host work (steps)."""

    def sleeper(ctx):
        yield Deadline(2_800_000_000)  # ~1 simulated second

    kernel.spawn(sleeper, "sleeper")
    before = kernel.steps_executed
    kernel.run()
    assert kernel.clock.now >= 2_800_000_000
    # The jump is O(1): a handful of scheduler steps, not one per cycle.
    assert kernel.steps_executed - before < 50


def test_timeout_zero_polls(kernel):
    """timeout=0 expires at the first quiescent moment: a poll that
    still yields to the scheduler."""
    results = []

    def poller(ctx):
        port = yield from open_port()
        msg = yield Recv(port=port, timeout=0)
        results.append(msg)

    kernel.spawn(poller, "poller")
    kernel.run()
    assert results == [None]


def test_stale_timer_does_not_wake_later_recv(kernel):
    """A timer whose receive already completed must not fire into the
    task's *next* blocking receive (lazy cancellation is invisible)."""
    results = []

    def receiver(ctx):
        data = yield from open_port()
        ctrl = yield from open_port()
        ctx.env["data"], ctx.env["ctrl"] = data, ctrl
        yield Recv(port=ctrl)
        # First recv: satisfied immediately by the already-queued message,
        # leaving its timer (deadline now+100M) stale in the queue.
        msg = yield Recv(port=data, timeout=100_000_000)
        results.append(msg.payload)
        # Second recv with no timeout: were the stale timer to fire into
        # it, we would see a spurious None and crash on .payload below.
        msg = yield Recv(port=data)
        results.append(msg.payload)

    r = kernel.spawn(receiver, "receiver")
    kernel.run()

    def sender(ctx):
        yield Send(r.env["data"], "one")
        yield Send(r.env["ctrl"], "go")
        # Outlive the first timer's deadline, then send the second.
        yield Deadline(200_000_000)
        yield Send(r.env["data"], "two")

    kernel.spawn(sender, "sender")
    kernel.run()
    assert results == ["one", "two"]
