"""Span tracing: Chrome trace_event export round-trips as valid JSON with
balanced begin/end pairs, and the kernel threads message lifetimes
through enqueue → delivery."""

import json

from repro.core.labels import Label
from repro.kernel import Kernel, KernelConfig, NewPort, Recv, Send, SetPortLabel
from repro.obs.spans import CHROME_PID, SpanRecorder


def _pairs_balance(events):
    """Every B has a matching E per tid (stack discipline), and every
    async b has a matching e per id."""
    stacks = {}
    for event in events:
        if event["ph"] == "B":
            stacks.setdefault(event["tid"], []).append(event["name"])
        elif event["ph"] == "E":
            stack = stacks.get(event["tid"], [])
            assert stack, f"E without B on tid {event['tid']}"
            stack.pop()
    for tid, stack in stacks.items():
        assert not stack, f"unclosed B spans on tid {tid}: {stack}"
    open_async = {}
    for event in events:
        if event["ph"] == "b":
            open_async[event["id"]] = event
        elif event["ph"] == "e":
            open_async.pop(event["id"], None)
    assert not open_async, f"unclosed async spans: {sorted(open_async)}"


def test_recorder_roundtrip():
    rec = SpanRecorder()
    rec.begin("work", "taskA", 100, detail=1)
    rec.end("work", "taskA", 250)
    rec.async_begin("msg", 7, 120, port="0x10")
    rec.async_end("msg", 7, 300, delivered=True)
    rec.instant("drop", "taskA", 400, reason="label-check")
    doc = json.loads(rec.to_json())
    events = doc["traceEvents"]
    assert all(event["pid"] == CHROME_PID for event in events if "pid" in event)
    _pairs_balance(events)
    names = [event["name"] for event in events]
    assert "thread_name" in names  # metadata emitted per track
    # Timestamps are microseconds at 2.8 GHz: 280 cycles = 0.1 us.
    b = next(event for event in events if event["ph"] == "B")
    assert abs(b["ts"] - 100 * 1e6 / 2.8e9) < 1e-9


def test_unfinished_async_spans_closed_at_export():
    rec = SpanRecorder()
    rec.async_begin("msg", 1, 50)
    doc = rec.to_chrome(now_cycles=500)
    _pairs_balance(doc["traceEvents"])
    closer = [event for event in doc["traceEvents"] if event["ph"] == "e"]
    assert closer and closer[0]["args"]["unfinished"] is True
    assert rec.open_spans() == [1]  # export does not mutate the recording


def test_limit_drops_oldest():
    rec = SpanRecorder(limit=10)
    for i in range(25):
        rec.instant("tick", "t", i)
    assert len(rec) <= 10
    assert rec.dropped > 0
    assert rec.to_chrome()["otherData"]["dropped_events"] == rec.dropped


def test_kernel_threads_message_spans():
    kernel = Kernel(config=KernelConfig(spans=True))
    state = {}

    def receiver(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        state["port"] = port
        yield Recv(port=port)

    def sender(ctx):
        yield Send(state["port"], "hello")

    kernel.spawn(receiver, "receiver")
    kernel.run()
    kernel.spawn(sender, "sender")
    kernel.run()

    doc = json.loads(kernel.spans.to_json(now_cycles=kernel.clock.now))
    events = doc["traceEvents"]
    _pairs_balance(events)
    msg_begins = [e for e in events if e["ph"] == "b" and e["name"] == "msg"]
    msg_ends = [e for e in events if e["ph"] == "e" and e["name"] == "msg"]
    assert msg_begins and len(msg_begins) == len(msg_ends)
    delivered = [e for e in msg_ends if e["args"].get("delivered")]
    assert delivered and delivered[0]["args"]["receiver"] == "receiver"
    # Activation spans cover both tasks.
    tracks = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert {"receiver", "sender"} <= tracks


def test_dropped_message_span_records_reason():
    kernel = Kernel(config=KernelConfig(spans=True))
    state = {}

    def receiver(ctx):
        port = yield NewPort()
        # Port label {0}: the sender's default ES {1} fails the delivery
        # check, so the message is enqueued then silently dropped.
        yield SetPortLabel(port, Label({}, 0))
        state["port"] = port
        yield Recv(port=port)  # blocks forever; the kernel quiesces anyway

    def sender(ctx):
        yield Send(state["port"], "blocked")

    kernel.spawn(receiver, "receiver")
    kernel.run()
    kernel.spawn(sender, "sender")
    kernel.run()

    doc = kernel.spans.to_chrome(now_cycles=kernel.clock.now)
    _pairs_balance(doc["traceEvents"])
    rejected = [
        e
        for e in doc["traceEvents"]
        if e["ph"] == "e" and e["args"].get("delivered") is False
    ]
    assert rejected and rejected[0]["args"]["reason"]


def test_flowtracer_chrome_trace_names_ports():
    from repro.sim.trace import FlowTracer

    kernel = Kernel(config=KernelConfig(spans=True))
    tracer = FlowTracer(kernel)
    state = {}

    def receiver(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        state["port"] = port
        yield Recv(port=port)

    def sender(ctx):
        yield Send(state["port"], "x")

    kernel.spawn(receiver, "receiver")
    kernel.run()
    kernel.spawn(sender, "sender")
    tracer_port_named = False
    kernel.run()
    tracer.name_handle(state["port"], "replyP")
    doc = tracer.chrome_trace()
    json.dumps(doc)  # serialisable
    for event in doc["traceEvents"]:
        if event.get("args", {}).get("port_name") == "replyP":
            tracer_port_named = True
    assert tracer_port_named


def test_flowtracer_chrome_trace_requires_spans():
    import pytest

    from repro.sim.trace import FlowTracer

    kernel = Kernel(config=KernelConfig())
    tracer = FlowTracer(kernel)
    with pytest.raises(ValueError):
        tracer.chrome_trace()
