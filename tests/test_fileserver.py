"""The labeled file server and the Section 5.2 / 5.4 examples: privacy
through discretionary contamination, integrity through grant handles."""

import pytest

from repro.core.labels import Label
from repro.core.levels import L0, L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel import ChangeLabel, NewHandle, Recv, Send, Spawn
from repro.servers.fileserver import file_server_body


@pytest.fixture
def fs(kernel):
    proc = kernel.spawn(file_server_body, "fs")
    kernel.run()
    return proc


def run_admin(kernel, fs, script):
    """Spawn a manager process with fresh handles uT/uG that runs *script*
    (a generator function taking (ctx, chan, fs_port, uT, uG)) and records
    its result in ctx.env['result']."""

    def manager(ctx):
        uT = yield NewHandle()
        uG = yield NewHandle()
        ctx.env["uT"], ctx.env["uG"] = uT, uG
        chan = yield from Channel.open()
        ctx.env["result"] = yield from script(ctx, chan, ctx.env["fs_port"], uT, uG)

    proc = kernel.spawn(manager, "manager", env={"fs_port": fs.env["fs_port"]})
    kernel.run()
    return proc


def test_create_read_roundtrip(kernel, fs):
    def script(ctx, chan, fs_port, uT, uG):
        yield from chan.call(
            fs_port,
            P.request(P.CREATE, path="/f", data=b"hello"),
        )
        r = yield from chan.call(fs_port, P.request(P.READ, path="/f"))
        return r.payload

    proc = run_admin(kernel, fs, script)
    assert proc.env["result"]["data"] == b"hello"


def test_read_missing_file(kernel, fs):
    def script(ctx, chan, fs_port, uT, uG):
        r = yield from chan.call(fs_port, P.request(P.READ, path="/missing"))
        return r.payload

    proc = run_admin(kernel, fs, script)
    assert P.is_error(proc.env["result"])


def test_create_taint_requires_grant(kernel, fs):
    # Creating a tainted file without granting the FS ⋆ must fail: the FS
    # refuses rather than accept unremovable contamination.
    def script(ctx, chan, fs_port, uT, uG):
        r = yield from chan.call(fs_port, P.request(P.CREATE, path="/t", taint=uT))
        return r.payload

    proc = run_admin(kernel, fs, script)
    assert P.is_error(proc.env["result"])


def test_tainted_read_contaminates_reader(kernel, fs):
    def script(ctx, chan, fs_port, uT, uG):
        yield from chan.call(
            fs_port,
            P.request(P.CREATE, path="/u/f", taint=uT, data=b"secret"),
            decontaminate_send=Label({uT: STAR}, L3),
        )
        # A default-labelled reader cannot receive the uT-3 reply...
        def reader(rctx):
            rchan = yield from Channel.open()
            r = yield from rchan.call(fs_port, P.request(P.READ, path="/u/f"))
            rctx.env["never"] = r.payload

        yield Spawn(reader, name="reader")
        return "spawned"

    run_admin(kernel, fs, script)
    assert kernel.drop_log.count("label-check") == 1  # the READ_R died


def test_cleared_reader_receives_and_is_tainted(kernel, fs):
    observed = {}

    def script(ctx, chan, fs_port, uT, uG):
        yield from chan.call(
            fs_port,
            P.request(P.CREATE, path="/u/f", taint=uT, data=b"secret"),
            decontaminate_send=Label({uT: STAR}, L3),
        )

        def reader(rctx):
            rchan = yield from Channel.open()
            setup = yield Recv(port=rchan.port)     # wait for clearance
            r = yield from rchan.call(fs_port, P.request(P.READ, path="/u/f"))
            from repro.kernel import GetLabels
            send, _ = yield GetLabels()
            observed["data"] = r.payload["data"]
            observed["taint"] = send(uT)

        hello = yield from Channel.open()
        yield Spawn(reader, name="reader", env={})
        # Clear the reader: raise its receive label for uT (we hold uT ⋆).
        # We need the reader's channel port; do the handshake:
        return "ok"

    # Simpler: run the whole flow in one manager with a raised helper.
    def script2(ctx, chan, fs_port, uT, uG):
        yield from chan.call(
            fs_port,
            P.request(P.CREATE, path="/u/f", taint=uT, data=b"secret"),
            decontaminate_send=Label({uT: STAR}, L3),
        )
        # Raise our own receive (we control uT) and read the file back.
        yield ChangeLabel(raise_receive={uT: L3})
        r = yield from chan.call(fs_port, P.request(P.READ, path="/u/f"))
        from repro.kernel import GetLabels
        send, _ = yield GetLabels()
        return {"data": r.payload["data"], "taint": send(uT)}

    proc = run_admin(kernel, fs, script2)
    assert proc.env["result"]["data"] == b"secret"
    # The manager holds uT ⋆, so its taint level stays ⋆ (Equation 5)...
    assert proc.env["result"]["taint"] == STAR


def test_integrity_write_requires_grant_proof(kernel, fs):
    # Section 5.4: the file server verifies V(uG) <= 0 before a write.
    def script(ctx, chan, fs_port, uT, uG):
        yield from chan.call(
            fs_port,
            P.request(P.CREATE, path="/u/f", grant=uG, data=b"v1"),
            decontaminate_send=Label({uG: STAR}, L3),
        )
        # Without V: rejected.
        r1 = yield from chan.call(fs_port, P.request(P.WRITE, path="/u/f", data=b"bad"))
        # With V = {uG 0, 3}: accepted (we hold uG ⋆, so ES(uG) = ⋆ <= 0).
        r2 = yield from chan.call(
            fs_port,
            P.request(P.WRITE, path="/u/f", data=b"v2"),
            verify=Label({uG: L0}, L3),
        )
        r3 = yield from chan.call(fs_port, P.request(P.READ, path="/u/f"))
        return (r1.payload, r2.payload, r3.payload)

    proc = run_admin(kernel, fs, script)
    r1, r2, r3 = proc.env["result"]
    assert P.is_error(r1)
    assert r2.get("ok") is True
    assert r3["data"] == b"v2"


def test_integrity_forger_cannot_write(kernel, fs):
    # A process without uG cannot fabricate the verification label: the
    # kernel drops a message whose V does not bound the sender's ES.
    stuck = []

    def script(ctx, chan, fs_port, uT, uG):
        yield from chan.call(
            fs_port,
            P.request(P.CREATE, path="/u/f", grant=uG, data=b"v1"),
            decontaminate_send=Label({uG: STAR}, L3),
        )

        def forger(fctx):
            fchan = yield from Channel.open()
            yield Send(
                fs_port,
                dict(P.request(P.WRITE, path="/u/f", data=b"evil"), reply=fchan.port),
                verify=Label({uG: L0}, L3),   # a lie: forger's ES(uG) = 1 > 0
            )
            stuck.append("sent")

        yield Spawn(forger, name="forger")
        return "ok"

    run_admin(kernel, fs, script)
    kernel.run()
    assert stuck == ["sent"]                      # send "succeeded"...
    assert kernel.drop_log.count("label-check") == 1  # ...but never arrived

    # And the file is unchanged:
    def check(ctx, chan, fs_port, uT, uG):
        r = yield from chan.call(fs_port, P.request(P.READ, path="/u/f"))
        return r.payload["data"]

    fs_proc = [p for p in kernel.processes.values() if p.name == "fs"][0]
    proc = kernel.spawn(
        _checker(check, fs_proc.env["fs_port"]), "checker"
    )
    kernel.run()
    assert proc.env["result"] == b"v1"


def _checker(script, fs_port):
    def body(ctx):
        chan = yield from Channel.open()
        ctx.env["result"] = yield from script(ctx, chan, fs_port, None, None)

    return body


def test_duplicate_create_rejected(kernel, fs):
    def script(ctx, chan, fs_port, uT, uG):
        yield from chan.call(fs_port, P.request(P.CREATE, path="/f", data=b"a"))
        r = yield from chan.call(fs_port, P.request(P.CREATE, path="/f", data=b"b"))
        return r.payload

    proc = run_admin(kernel, fs, script)
    assert P.is_error(proc.env["result"])


def test_list(kernel, fs):
    def script(ctx, chan, fs_port, uT, uG):
        yield from chan.call(fs_port, P.request(P.CREATE, path="/b", data=b""))
        yield from chan.call(fs_port, P.request(P.CREATE, path="/a", data=b""))
        r = yield from chan.call(fs_port, P.request("LIST"))
        return r.payload

    proc = run_admin(kernel, fs, script)
    assert proc.env["result"]["paths"] == ["/a", "/b"]
