"""Property test: ``Table._indexes`` stays consistent with ``rows``.

The simulation-only equality indexes are built lazily by ``lookup`` and
must be invalidated by every mutating statement.  Hypothesis drives a
random interleaving of INSERT / UPDATE / DELETE with lookups on random
column subsets; after every step each indexed answer must equal a fresh
linear scan of ``rows``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.engine import Database

COLUMNS = ("a", "b", "c")

_value = st.integers(min_value=0, max_value=3)

_insert = st.tuples(st.just("insert"), _value, _value, _value)
_update = st.tuples(
    st.just("update"), st.sampled_from(COLUMNS), _value,
    st.sampled_from(COLUMNS), _value,
)
_delete = st.tuples(st.just("delete"), st.sampled_from(COLUMNS), _value)
_lookup = st.tuples(
    st.just("lookup"),
    st.lists(st.sampled_from(COLUMNS), min_size=1, max_size=3, unique=True),
    _value,
)

_script = st.lists(
    st.one_of(_insert, _update, _delete, _lookup), min_size=1, max_size=40
)


def _scan(rows, conditions):
    return [
        row
        for row in rows
        if all(row.get(col) == val for col, val in conditions.items())
    ]


def _check_all_indexes(table):
    """Every materialized index must answer exactly like a linear scan."""
    for key, index in table._indexes.items():
        cols = sorted(key)
        for values, hits in index.items():
            conditions = dict(zip(cols, values))
            assert hits == _scan(table.rows, conditions), (
                f"stale index for {conditions}"
            )
        # And no matching row may be missing from the index entirely.
        for row in table.rows:
            values = tuple(row.get(c) for c in cols)
            assert row in index.get(values, []), f"row missing from index {cols}"


@settings(max_examples=60)
@given(_script)
def test_indexes_track_rows_through_writes(script):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER)")
    table = db.tables["t"]
    for step in script:
        if step[0] == "insert":
            _, a, b, c = step
            db.execute("INSERT INTO t (a, b, c) VALUES (?, ?, ?)", (a, b, c))
        elif step[0] == "update":
            _, set_col, set_val, where_col, where_val = step
            db.execute(
                f"UPDATE t SET {set_col} = ? WHERE {where_col} = ?",
                (set_val, where_val),
            )
        elif step[0] == "delete":
            _, where_col, where_val = step
            db.execute(f"DELETE FROM t WHERE {where_col} = ?", (where_val,))
        else:
            _, cols, val = step
            conditions = {col: val for col in cols}
            assert table.lookup(conditions) == _scan(table.rows, conditions)
        _check_all_indexes(table)


@given(_script)
@settings(max_examples=30)
def test_lookup_never_mutates_rows(script):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER)")
    table = db.tables["t"]
    for step in script:
        if step[0] == "insert":
            _, a, b, c = step
            db.execute("INSERT INTO t (a, b, c) VALUES (?, ?, ?)", (a, b, c))
    before = [dict(r) for r in table.rows]
    for col in COLUMNS:
        for val in range(4):
            table.lookup({col: val})
    assert table.rows == before
