"""Adversarial tests: compromised workers actively attempt every
exfiltration the API offers, and the kernel blocks each one (paper
Sections 2, 7.2, 7.8).

"Workers are untrusted, meaning that worker compromise cannot violate the
user isolation policy."  These tests play the attacker.
"""

import pytest

from repro.core.labels import Label
from repro.core.levels import L0, L3, STAR
from repro.ipc import protocol as P
from repro.kernel.syscalls import NewPort, Recv, Send, SetPortLabel
from repro.okws import ServiceConfig, launch
from repro.okws.worker import DbError
from repro.sim.workload import HttpClient

#: A side channel the attacker sets up: a globally open port where the
#: compromised worker tries to publish stolen data.
EXFIL = {}


def evil_cache_handler(ectx, request):
    """A compromised session-cache worker: stores the user's secret, then
    tries to ship the *whole session store* everywhere it can."""
    request.session["secret"] = request.body
    attempts = []
    # 1. Straight to the attacker's drop box.
    if "port" in EXFIL:
        yield Send(EXFIL["port"], {"stolen": dict(request.session)})
        attempts.append("dropbox")
    # 2. To another connection (the conn of a *different* user, captured
    #    earlier by the compromised code).
    other = EXFIL.get("other_conn")
    if other is not None and other != request.args.get("conn"):
        yield Send(other, P.request(P.WRITE, data={"stolen": dict(request.session)}))
        attempts.append("cross-conn")
    EXFIL.setdefault("conns", []).append(request.args.get("conn"))
    # 3. Write the secret into the database as *another* user — the verify
    #    label for that is unforgeable, so use our own... then try lying.
    try:
        yield from request.db.write(
            "INSERT INTO drops (text) VALUES (?)", (str(request.body),)
        )
        attempts.append("db-own")
    except DbError:
        pass
    return {"headers": "HTTP/1.0 200 OK", "body": "ok", "attempts": attempts}


@pytest.fixture()
def site():
    EXFIL.clear()
    return launch(
        services=[ServiceConfig("evil", evil_cache_handler)],
        users=[("alice", "pw-a"), ("bob", "pw-b")],
        schema=["CREATE TABLE drops (text TEXT)"],
    )


def attacker_process(kernel):
    """An unprivileged process with an open port, logging what reaches it."""
    received = []

    def body(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        while True:
            msg = yield Recv(port=port)
            received.append(msg.payload)

    proc = kernel.spawn(body, "attacker")
    kernel.run()
    EXFIL["port"] = proc.env["port"]
    return received


def test_tainted_worker_cannot_reach_attacker_dropbox(site):
    received = attacker_process(site.kernel)
    client = HttpClient(site)
    r = client.request("alice", "pw-a", "evil", body=b"alice-secret")
    assert r.ok
    # The exfiltration send was silently dropped: the worker EP's send
    # label carries uT 3, the attacker's receive label tops out at 2.
    assert received == []
    assert site.kernel.drop_log.count("label-check") >= 1


def test_worker_cannot_write_other_users_connection(site):
    client = HttpClient(site)
    # Alice connects; the compromised worker records her uC.
    client.request("alice", "pw-a", "evil", body=b"alice-secret")
    EXFIL["other_conn"] = EXFIL["conns"][0] if EXFIL.get("conns") else None
    # Bob connects; his worker EP tries to write to alice's (closed) conn.
    r = client.request("bob", "pw-b", "evil", body=b"bob-secret")
    assert r.ok
    # Nothing of bob's reached alice's wire buffer.
    leaked = [
        chunk
        for chunks in site.wire.outbound.values()
        for chunk in chunks
        if isinstance(chunk, dict) and "stolen" in chunk
    ]
    assert leaked == []


def test_cross_session_eps_cannot_talk(site):
    # Two sessions of the same worker: EP[alice] sends to EP[bob]'s
    # session port; the kernel must drop it (different taints).
    client = HttpClient(site)
    client.request("alice", "pw-a", "evil", body=b"s1")
    client.request("bob", "pw-b", "evil", body=b"s2")
    kernel = site.kernel
    worker = next(p for p in kernel.processes.values() if p.name == "worker-evil")
    eps = list(worker.event_processes.values())
    assert len(eps) == 2
    a_ep, b_ep = eps
    # Forge a direct send from one EP's identity by injecting a message
    # with a taint mismatch: simulate via a tainted helper process.
    a_taint = [h for h, lvl in a_ep.send_label.iter_entries() if lvl == L3]
    b_ports = sorted(b_ep.owned_ports)
    assert a_taint and b_ports

    def helper(ctx):
        # Tainted like alice's EP, talking to bob's EP session port.
        yield Send(
            b_ports[0],
            {"stolen": "alice-data"},
            contaminate=Label({a_taint[0]: L3}, STAR),
        )

    before = kernel.drop_log.count()
    kernel.spawn(helper, "helper")
    kernel.run()
    assert kernel.drop_log.count() > before


def test_db_write_as_other_user_is_unforgeable(site):
    # A worker's DbClient could lie about its uid, but the verify label
    # must carry *that* user's uG at 0 — which the sender does not hold,
    # so the kernel drops the QUERY before dbproxy even sees it.
    client = HttpClient(site)
    client.request("alice", "pw-a", "evil", body=b"x")
    kernel = site.kernel

    worker = next(p for p in kernel.processes.values() if p.name == "worker-evil")
    ep = next(iter(worker.event_processes.values()))
    # Extract alice's handles from the EP label (values are public anyway).
    taint = next(h for h, lvl in ep.send_label.iter_entries() if lvl == L3)

    def forger(ctx):
        chan_port = yield NewPort()
        yield SetPortLabel(chan_port, Label.top())
        # Claim to be alice (uid 1) with a fabricated verify label: the
        # fabricated uG-0 entry cannot bound our ES — dropped.
        yield Send(
            site.dbproxy_port,
            P.request(
                P.QUERY,
                reply=chan_port,
                sql="INSERT INTO drops (text) VALUES ('forged')",
                params=(),
                uid=1,
            ),
            verify=Label({taint: L3, 99999: L0}, 2),
        )

    before = kernel.drop_log.count("label-check")
    kernel.spawn(forger, "forger")
    kernel.run()
    assert kernel.drop_log.count("label-check") == before + 1


def test_compromise_contained_to_compromised_user(site):
    # End to end: despite a fully compromised worker, each user still gets
    # correct service and never sees the other's data on the wire.
    client = HttpClient(site)
    attacker_process(site.kernel)
    client.request("alice", "pw-a", "evil", body=b"alice-secret")
    client.request("bob", "pw-b", "evil", body=b"bob-secret")
    # Check every byte that ever hit the wire per connection.
    for conn_id, chunks in list(site.wire.outbound.items()):
        text = repr(chunks)
        assert not ("alice-secret" in text and "bob-secret" in text)
