"""The label-flow tracer (repro.sim.trace)."""


from repro.core.labels import Label
from repro.core.levels import L2, L3, STAR
from repro.kernel import NewHandle, NewPort, Recv, Send, SetPortLabel
from repro.sim.trace import FlowTracer


def test_tracer_records_deliveries_and_drops(kernel):
    tracer = FlowTracer(kernel)
    log = []

    def listener(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        while True:
            msg = yield Recv(port=port)
            log.append(msg.payload)

    lp = kernel.spawn(listener, "listener")
    kernel.run()

    def sender(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        yield Send(ctx.env["t"], "clean")
        yield Send(ctx.env["t"], "mild", contaminate=Label({h: L2}, STAR))
        yield Send(ctx.env["t"], "hot", contaminate=Label({h: L3}, STAR))

    sp = kernel.spawn(sender, "sender", env={"t": lp.env["port"]})
    kernel.run()
    tracer.name_handle(sp.env["h"], "hT")

    assert log == ["clean", "mild"]
    events = tracer.between("sender", "listener")
    assert [e.delivered for e in events] == [True, True, False]
    assert len(tracer.drops()) == 1
    # The second delivery contaminated the listener.
    contaminated = tracer.contaminations()
    assert len(contaminated) == 1
    assert contaminated[0].send_after(sp.env["h"]) == L2

    text = tracer.format()
    assert "sender => listener" in text
    assert "XX" in text                  # the dropped delivery
    assert "hT" in text                  # symbolic name rendered
    assert "contaminated" in text


def test_tracer_detach_restores_kernel(kernel):
    tracer = FlowTracer(kernel)
    tracer.detach()

    def listener(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        yield Recv(port=port)

    lp = kernel.spawn(listener, "listener")
    kernel.run()

    def sender(ctx):
        yield Send(ctx.env["t"], "x")

    kernel.spawn(sender, "sender", env={"t": lp.env["port"]})
    kernel.run()
    assert tracer.events == []           # nothing recorded after detach


def test_tracer_format_last_n(kernel):
    tracer = FlowTracer(kernel)

    def listener(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        while True:
            yield Recv(port=port)

    lp = kernel.spawn(listener, "listener")
    kernel.run()

    def sender(ctx):
        for i in range(5):
            yield Send(ctx.env["t"], i)

    kernel.spawn(sender, "sender", env={"t": lp.env["port"]})
    kernel.run()
    assert len(tracer.events) == 5
    assert tracer.format(last=2).count("sender => listener") == 2
