"""The workload generator, the Wire boundary object, and the experiment
drivers' small moving parts."""

import pytest

from repro.okws import ServiceConfig, launch
from repro.okws.services import echo_handler, session_cache_handler
from repro.servers.netd import Wire
from repro.sim.runner import (
    run_latency_experiment,
    run_memory_experiment,
    run_session_sweep,
)
from repro.sim.stats import Series
from repro.sim.workload import HttpClient, HttpResponse


def test_wire_buffers_and_stamps():
    wire = Wire()
    wire.deliver(1, b"a", now=100)
    wire.deliver(1, b"b", now=200)
    wire.deliver(2, b"c", now=300)
    assert wire.take(1) == [b"a", b"b"]
    assert wire.take(1) == []           # drained
    assert wire.stamps[1] == [100, 200]
    wire.close(2)
    assert wire.closed[2] is True


def test_http_response_properties():
    ok = HttpResponse(conn_id=1, payload={"body": "x"}, open_cycles=100, done_cycles=400)
    assert ok.ok and ok.body == "x" and ok.latency_cycles == 300
    forbidden = HttpResponse(conn_id=2, payload={"status": 403}, open_cycles=0, done_cycles=1)
    assert not forbidden.ok
    dead = HttpResponse(conn_id=3, payload=None, open_cycles=0, done_cycles=0)
    assert dead.body is None


@pytest.fixture(scope="module")
def site():
    return launch(
        services=[
            ServiceConfig("echo", echo_handler),
            ServiceConfig("cache", session_cache_handler),
        ],
        users=[(f"u{i}", f"pw{i}") for i in range(8)],
    )


def test_request_assigns_fresh_conn_ids(site):
    client = HttpClient(site)
    r1 = client.request("u0", "pw0", "echo")
    r2 = client.request("u1", "pw1", "echo")
    assert r1.conn_id != r2.conn_id
    assert r1.latency_cycles > 0


def test_run_batch_returns_one_response_per_request(site):
    client = HttpClient(site)
    requests = [(f"u{i % 8}", f"pw{i % 8}", "echo", None, {"length": i % 5 + 1}) for i in range(24)]
    responses = client.run_batch(requests, concurrency=7)
    assert len(responses) == 24
    assert all(r.ok for r in responses)


def test_batch_sessions_accumulate(site):
    client = HttpClient(site)
    client.run_batch(
        [(f"u{i}", f"pw{i}", "cache", b"x", None) for i in range(8)], concurrency=4
    )
    worker = next(p for p in site.kernel.processes.values() if p.name == "worker-cache")
    assert len(worker.event_processes) == 8


def test_run_session_sweep_point_shape():
    points = run_session_sweep([2], rounds=2, min_connections=4)
    point = points[0]
    assert point.sessions == 2
    assert point.connections >= 4
    assert point.throughput > 0
    assert set(point.components_kcycles) >= {"Network", "OKWS", "Kernel IPC"}
    assert abs(sum(point.components_kcycles.values()) - point.total_kcycles) < 1


def test_run_memory_experiment_monotonic():
    points = run_memory_experiment([0, 50])
    assert points[1].total_pages > points[0].total_pages
    assert points[1].user_pages > points[0].user_pages


def test_run_latency_experiment_returns_microseconds():
    latencies = run_latency_experiment(1, n_requests=12, concurrency=4)
    assert len(latencies) == 12
    assert all(100 < l < 100_000 for l in latencies)


def test_series_formatting():
    series = Series("test", [1, 2], [3.0, 4.0])
    text = series.format()
    assert "test" in text and "3.00" in text
    series.add(5, 6.0)
    assert series.xs[-1] == 5
