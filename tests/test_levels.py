"""Unit tests for the level set (paper Section 5.1)."""

import pytest

from repro.core.levels import (
    ALL_LEVELS,
    DEFAULT_RECEIVE,
    DEFAULT_SEND,
    L0,
    L1,
    L2,
    L3,
    STAR,
    check_level,
    is_level,
    level_from_wire,
    level_name,
    level_to_wire,
)


def test_star_is_lowest():
    assert STAR < L0 < L1 < L2 < L3


def test_total_order_matches_paper():
    # "[*, 0, 1, 2, 3] ... * is the lowest or most privileged level, and 3
    # is the highest or least privileged level."
    assert sorted(ALL_LEVELS) == [STAR, L0, L1, L2, L3]


def test_defaults():
    # "The default levels ... are 1 for send labels and 2 for receive labels."
    assert DEFAULT_SEND == L1
    assert DEFAULT_RECEIVE == L2


def test_min_max_realize_lattice_ops():
    assert max(STAR, L3) == L3
    assert min(STAR, L3) == STAR
    assert max(L1, L2) == L2


def test_is_level():
    for level in ALL_LEVELS:
        assert is_level(level)
    assert not is_level(4)
    assert not is_level(-2)
    assert not is_level(True)   # bools are not levels
    assert not is_level("1")


def test_check_level_raises():
    with pytest.raises(ValueError):
        check_level(7)
    assert check_level(L2) == L2


def test_level_names():
    assert level_name(STAR) == "*"
    assert level_name(L3) == "3"
    with pytest.raises(ValueError):
        level_name(9)


def test_wire_encoding_roundtrip():
    for level in ALL_LEVELS:
        code = level_to_wire(level)
        assert 0 <= code <= 4 < 8  # fits in the 3 low bits of a word
        assert level_from_wire(code) == level


def test_wire_encoding_star_is_four():
    # Levels 0..3 encode as themselves; * takes the spare code 4.
    assert level_to_wire(L0) == 0
    assert level_to_wire(L3) == 3
    assert level_to_wire(STAR) == 4


def test_wire_decode_rejects_garbage():
    with pytest.raises(ValueError):
        level_from_wire(7)
