"""The bulletin-board application (paper Section 2's motivating class):
private drafts, decentralized publishing, mixed public/private reads."""

import pytest

from repro.okws import ServiceConfig, launch
from repro.okws.services import board_handler, board_publisher_handler
from repro.sim.workload import HttpClient


@pytest.fixture()
def site():
    return launch(
        services=[
            ServiceConfig("board", board_handler),
            ServiceConfig("publish", board_publisher_handler, declassifier=True),
        ],
        users=[("alice", "pw-a"), ("bob", "pw-b"), ("carol", "pw-c")],
        schema=["CREATE TABLE posts (author TEXT, text TEXT, published INTEGER)"],
    )


@pytest.fixture()
def client(site):
    return HttpClient(site)


def test_drafts_are_private(site, client):
    client.request("alice", "pw-a", "board", body="WIP: resignation letter", args={"op": "draft"})
    # Alice sees her draft; bob sees an empty board.
    assert client.request("alice", "pw-a", "board", args={"op": "drafts"}).body == [
        "WIP: resignation letter"
    ]
    assert client.request("bob", "pw-b", "board", args={"op": "read"}).body == []
    # The kernel, not SQL, kept it private.
    assert site.kernel.drop_log.count("label-check") >= 1


def test_publish_flow(site, client):
    client.request("alice", "pw-a", "board", body="hello world", args={"op": "draft"})
    r = client.request("alice", "pw-a", "publish")
    assert "published 1" in r.body
    for user, pw in (("bob", "pw-b"), ("carol", "pw-c")):
        posts = client.request(user, pw, "board", args={"op": "read"}).body
        assert posts == [{"author": "alice", "text": "hello world", "published": True}]


def test_mixed_read_combines_own_drafts_and_public(site, client):
    client.request("alice", "pw-a", "board", body="public soon", args={"op": "draft"})
    client.request("alice", "pw-a", "publish")
    client.request("bob", "pw-b", "board", body="bob-draft", args={"op": "draft"})
    bob_view = client.request("bob", "pw-b", "board", args={"op": "read"}).body
    texts = {p["text"] for p in bob_view}
    assert texts == {"public soon", "bob-draft"}
    # Published flag distinguishes them.
    flags = {p["text"]: p["published"] for p in bob_view}
    assert flags["public soon"] is True and flags["bob-draft"] is False


def test_publisher_only_publishes_its_user(site, client):
    client.request("alice", "pw-a", "board", body="alice-1", args={"op": "draft"})
    client.request("bob", "pw-b", "board", body="bob-1", args={"op": "draft"})
    client.request("bob", "pw-b", "publish")        # bob publishes *his* drafts
    carol_view = client.request("carol", "pw-c", "board", args={"op": "read"}).body
    assert [p["text"] for p in carol_view] == ["bob-1"]


def test_publish_with_nothing_to_publish(site, client):
    r = client.request("carol", "pw-c", "publish")
    assert "published 0" in r.body
