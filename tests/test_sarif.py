"""The shared SARIF 2.1.0 emitter behind ``--format sarif``."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import asblint, cli, sarif
from repro.analysis.check import run_check
from repro.analysis.model import load

TOPOLOGIES = Path(__file__).resolve().parents[1] / "examples" / "topologies"

LEAKY_SOURCE = '''\
from repro.kernel.syscalls import Send
from repro.core.labels import Label

def dead_sender(ctx):
    port = yield NewPort()
    yield Send(port, verify=Label({}, 0))  # asblint: ignore[no-such-rule]
'''


def test_asblint_sarif_shape(tmp_path):
    path = tmp_path / "prog.py"
    path.write_text(LEAKY_SOURCE)
    doc = sarif.asblint_sarif(asblint.analyze_paths([path]))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "asblint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"ASB001", "ASB002", "ASB003", "ASB004", "ASB000"} <= rule_ids
    # The unknown-rule pragma surfaces as a warning-level ASB000 result
    # with a physical location.
    asb000 = [r for r in run["results"] if r["ruleId"] == "ASB000"]
    assert asb000 and asb000[0]["level"] == "warning"
    loc = asb000[0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith("prog.py")
    assert loc["region"]["startLine"] == 6
    json.dumps(doc)


def test_check_sarif_carries_traces():
    report = run_check(load(TOPOLOGIES / "leaky_site.json"))
    doc = sarif.check_sarif(report)
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "asbcheck"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {
        "isolation",
        "mandatory-declassifier",
        "capability-confinement",
        "dead-edge",
    }
    results = run["results"]
    assert len(results) == 3  # the three violated policies
    isolation = next(r for r in results if r["ruleId"] == "isolation")
    assert isolation["level"] == "error"
    names = {
        loc["fullyQualifiedName"]
        for entry in isolation["locations"]
        for loc in entry.get("logicalLocations", [])
    }
    assert "leaky-site/sink_v" in names
    trace = isolation["properties"]["trace"]
    assert [s["edge"] for s in trace] == ["worker_u->front", "front->sink"]
    json.dumps(doc)


def test_clean_check_sarif_has_no_results():
    report = run_check(load(TOPOLOGIES / "clean_site.json"))
    assert sarif.check_sarif(report)["runs"][0]["results"] == []


def test_cli_format_sarif_round_trips(tmp_path, capsys):
    path = tmp_path / "prog.py"
    path.write_text(LEAKY_SOURCE)
    code = cli.main(["analyze", str(path), "--format", "sarif"])
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["tool"]["driver"]["name"] == "asblint"
    assert code == 1  # the ASB000 finding fails the run

    code = cli.main(
        ["check", "--topology", str(TOPOLOGIES / "leaky_site.json"),
         "--format", "sarif"]
    )
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["tool"]["driver"]["name"] == "asbcheck"
    assert code == 1
