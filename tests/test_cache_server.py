"""Direct protocol tests for okc, the shared cache server (error paths
and the public namespace; the end-to-end flows live in
test_cache_supervision.py)."""

import pytest

from repro.core.labels import Label
from repro.core.levels import L0, L2, L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel import ChangeLabel, NewHandle, Send
from repro.servers.cache import cache_body


@pytest.fixture
def cache(kernel):
    proc = kernel.spawn(cache_body, "okc")
    kernel.run()
    return proc


def probe(kernel, cache, script, name="probe"):
    def body(ctx):
        chan = yield from Channel.open()
        ctx.env["result"] = yield from script(ctx, chan, cache.env)

    proc = kernel.spawn(body, name)
    kernel.run()
    return proc


def bind_user(chan, env, uid):
    """Sub-generator: mint handles for *uid* and BIND them (as idd would)."""
    taint = yield NewHandle()
    grant = yield NewHandle()
    yield Send(
        env["cache_grant_port"],
        P.request("BIND", uid=uid, taint=taint, grant=grant),
        decontaminate_send=Label({taint: STAR, grant: STAR}, L3),
    )
    return taint, grant


def test_put_get_roundtrip(kernel, cache):
    def script(ctx, chan, env):
        taint, grant = yield from bind_user(chan, env, 1)
        yield ChangeLabel(raise_receive={taint: L3})
        r1 = yield from chan.call(
            env["cache_port"],
            P.request("PUT", key="k", value="v", uid=1),
            verify=Label({taint: L3, grant: L0}, L2),
        )
        r2 = yield from chan.call(
            env["cache_port"], P.request("GET", key="k", uid=1, owner=1)
        )
        return (r1.payload["ok"], r2.payload["value"], r2.payload["hit"])

    proc = probe(kernel, cache, script)
    assert proc.env["result"] == (True, "v", True)


def test_put_unknown_user_rejected(kernel, cache):
    def script(ctx, chan, env):
        r = yield from chan.call(
            env["cache_port"], P.request("PUT", key="k", value="v", uid=404)
        )
        return r.payload

    proc = probe(kernel, cache, script)
    assert P.is_error(proc.env["result"])


def test_put_with_weak_verify_rejected(kernel, cache):
    def script(ctx, chan, env):
        taint, grant = yield from bind_user(chan, env, 1)
        # Default verify label ({3}) does not prove the grant.
        r = yield from chan.call(
            env["cache_port"], P.request("PUT", key="k", value="v", uid=1)
        )
        return r.payload

    proc = probe(kernel, cache, script)
    assert P.is_error(proc.env["result"])


def test_get_public_miss_and_hit(kernel, cache):
    def script(ctx, chan, env):
        taint, grant = yield from bind_user(chan, env, 1)
        miss = yield from chan.call(
            env["cache_port"], P.request("GET", key="motd", uid=1, owner=0)
        )
        # Publish via declassification (we hold taint ⋆).
        yield from chan.call(
            env["cache_port"],
            P.request("PUT", key="motd", value="hello world", uid=1),
            verify=Label({taint: STAR}, L2),
        )
        hit = yield from chan.call(
            env["cache_port"], P.request("GET", key="motd", uid=1, owner=0)
        )
        return (miss.payload["hit"], hit.payload["value"])

    proc = probe(kernel, cache, script)
    assert proc.env["result"] == (False, "hello world")


def test_get_unknown_owner_is_error(kernel, cache):
    def script(ctx, chan, env):
        taint, grant = yield from bind_user(chan, env, 1)
        r = yield from chan.call(
            env["cache_port"], P.request("GET", key="k", uid=1, owner=42)
        )
        return r.payload

    proc = probe(kernel, cache, script)
    assert P.is_error(proc.env["result"])


def test_bind_without_star_ignored(kernel, cache):
    # An imposter BIND (no DS grant): the cache must not trust the claimed
    # handles, so a later PUT for that uid still fails.
    def script(ctx, chan, env):
        taint = yield NewHandle()
        grant = yield NewHandle()
        yield Send(
            env["cache_grant_port"],
            P.request("BIND", uid=9, taint=123456, grant=654321),  # forged values
        )
        r = yield from chan.call(
            env["cache_port"],
            P.request("PUT", key="k", value="v", uid=9),
            verify=Label({taint: L3, grant: L0}, L2),
        )
        return r.payload

    proc = probe(kernel, cache, script)
    assert P.is_error(proc.env["result"])
