"""Model-based (stateful) testing of the kernel label representation.

Hypothesis drives long random sequences of the operations the kernel
actually performs on a label over its lifetime — sparse updates (handle
grants/releases), Figure 4 effect applications, receive raises — against
a plain-dict model.  This hunts for state-dependent corruption the
per-operation property tests cannot see (e.g. chunk splits/rebalances
interacting with earlier updates)."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core import labelops
from repro.core.chunks import CHUNK_CAPACITY, ChunkedLabel, OpStats
from repro.core.labels import Label
from repro.core.levels import ALL_LEVELS, STAR

levels = st.sampled_from(ALL_LEVELS)
handles = st.integers(min_value=0, max_value=400)
small_labels = st.builds(
    Label,
    st.dictionaries(handles, levels, max_size=6),
    default=levels,
)


class LabelLifecycle(RuleBasedStateMachine):
    @initialize(default=levels)
    def start(self, default):
        self.label = ChunkedLabel.from_label(Label({}, default))
        self.model = {}
        self.default = default

    def _model_label(self) -> Label:
        return Label(dict(self.model), self.default)

    @rule(handle=handles, level=levels)
    def sparse_update(self, handle, level):
        self.label = labelops.sparse_update(self.label, {handle: level}, OpStats())
        if level == self.default:
            self.model.pop(handle, None)
        else:
            self.model[handle] = level

    @rule(updates=st.dictionaries(handles, levels, min_size=1, max_size=8))
    def sparse_update_batch(self, updates):
        self.label = labelops.sparse_update(self.label, updates, OpStats())
        for handle, level in updates.items():
            if level == self.default:
                self.model.pop(handle, None)
            else:
                self.model[handle] = level

    @rule(es=small_labels, ds=small_labels)
    def apply_effects(self, es, ds):
        self.label = labelops.apply_send_effects(
            self.label,
            ChunkedLabel.from_label(es),
            ChunkedLabel.from_label(ds),
            OpStats(),
        )
        want = labelops.apply_send_effects_reference(self._model_label(), es, ds)
        self.default = want.default
        self.model = dict(want.entries())

    @rule(dr=small_labels)
    def raise_label(self, dr):
        self.label = labelops.raise_receive(
            self.label, ChunkedLabel.from_label(dr), OpStats()
        )
        want = self._model_label() | dr
        self.default = want.default
        self.model = dict(want.entries())

    @invariant()
    def matches_model(self):
        assert self.label.to_label() == self._model_label()

    @invariant()
    def chunks_are_sorted_and_bounded(self):
        previous = -1
        for chunk in self.label.chunks:
            assert 0 < len(chunk.entries) <= CHUNK_CAPACITY
            for handle, level in chunk.entries:
                assert handle > previous
                previous = handle
                assert level != self.label.default  # normalised

    @invariant()
    def hints_are_correct(self):
        levels_present = [lvl for _, lvl in self.label.iter_entries()]
        if levels_present:
            assert self.label.explicit_min == min(levels_present)
            assert self.label.explicit_max == max(levels_present)
        assert self.label.min_level == min(levels_present + [self.label.default])

    @invariant()
    def nonstar_view_is_consistent(self):
        want = tuple(
            (h, lvl) for h, lvl in self.label.iter_entries() if lvl != STAR
        )
        assert self.label.nonstar_entries() == want


TestLabelLifecycle = LabelLifecycle.TestCase
TestLabelLifecycle.settings = settings(max_examples=60, stateful_step_count=40)
