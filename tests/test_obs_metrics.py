"""The metrics layer: instruments, registry semantics, and — the part
that matters — reconciliation of the kernel's hot-path counters against
the accounting the kernel already keeps (DropLog, OpStats)."""

import pytest

from repro.core.labels import Label
from repro.core.levels import L1, L3
from repro.kernel import Kernel, KernelConfig, NewPort, Recv, Send, SetPortLabel
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, NULL, kernel_snapshot


# -- instruments --------------------------------------------------------------------


def test_counter_and_gauge():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.snapshot() == 5
    g = Gauge()
    g.set(2.5)
    assert g.snapshot() == 2.5


def test_histogram_snapshot():
    h = Histogram()
    for value in (1, 2, 3):
        h.observe(value)
    snap = h.snapshot()
    assert snap["count"] == 3
    assert snap["sum"] == 6
    assert snap["min"] == 1
    assert snap["max"] == 3
    assert snap["mean"] == 2


def test_registry_kind_conflict():
    registry = MetricsRegistry()
    registry.counter("a.b")
    with pytest.raises(ValueError):
        registry.gauge("a.b")


def test_disabled_registry_returns_null():
    registry = MetricsRegistry(enabled=False)
    instrument = registry.counter("x")
    assert instrument is NULL
    instrument.inc()
    instrument.observe(3)
    assert registry.snapshot() == {}
    assert len(registry) == 0


def test_scope_prefixes_names():
    registry = MetricsRegistry()
    scope = registry.scope("kernel").scope("ipc")
    scope.counter("sends").inc()
    assert registry.get("kernel.ipc.sends") == 1


# -- kernel reconciliation ----------------------------------------------------------


def _obs_kernel() -> Kernel:
    return Kernel(config=KernelConfig(metrics=True))


def test_send_and_delivery_counts_reconcile():
    kernel = _obs_kernel()
    state = {}

    def receiver(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        state["port"] = port
        for _ in range(3):
            msg = yield Recv(port=port)
            state.setdefault("got", []).append(msg.payload)

    def sender(ctx):
        for i in range(3):
            yield Send(state["port"], i)

    kernel.spawn(receiver, "receiver")
    kernel.run()
    kernel.spawn(sender, "sender")
    kernel.run()

    metrics = kernel.metrics
    assert state["got"] == [0, 1, 2]
    assert metrics.get("kernel.ipc.sends") == 3
    assert metrics.get("kernel.ipc.enqueued") == 3
    assert metrics.get("kernel.ipc.delivered") == 3
    assert metrics.get("kernel.sched.steps") == kernel.steps_executed


def test_drop_counters_reconcile_with_drop_log():
    kernel = _obs_kernel()
    state = {}

    def receiver(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        state["port"] = port
        # Raise the receive label's strictness: default receive refuses
        # full taint, so a contaminated send gets dropped at delivery.
        msg = yield Recv(port=port)
        state["got"] = msg.payload

    def sender(ctx):
        taint = (yield from _new_handle(ctx))
        # Contaminated at uT 3; receiver's default {2} refuses it.
        yield Send(state["port"], "tainted", cs=Label({taint: L3}, L1))
        yield Send(state["port"], "clean")

    kernel.spawn(receiver, "receiver")
    kernel.run()
    kernel.spawn(sender, "sender")
    kernel.run()

    assert state["got"] == "clean"
    drops = kernel.drop_log
    total_metric_drops = sum(
        value
        for name, value in kernel.metrics.snapshot().items()
        if name.startswith("kernel.ipc.drops.")
    )
    assert total_metric_drops == drops.count() > 0
    for reason in ("label-check", "dead-port", "queue-limit", "port-label"):
        assert kernel.metrics.get(f"kernel.ipc.drops.{reason}") == drops.count(reason)


def _new_handle(ctx):
    from repro.kernel.syscalls import NewHandle

    handle = yield NewHandle()
    return handle


def test_label_fastpath_counters_reconcile_with_opstats():
    kernel = _obs_kernel()
    state = {}

    def receiver(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        state["port"] = port
        for _ in range(4):
            yield Recv(port=port)

    def sender(ctx):
        for i in range(4):
            yield Send(state["port"], i)

    kernel.spawn(receiver, "receiver")
    kernel.run()
    kernel.spawn(sender, "sender")
    kernel.run()

    stats = kernel.label_stats
    assert stats.fast_path + stats.full_merges > 0
    assert kernel.metrics.get("kernel.labels.fast_path") == stats.fast_path
    assert kernel.metrics.get("kernel.labels.full_merges") == stats.full_merges
    assert kernel.metrics.get("kernel.labels.entries_scanned") == stats.entries_scanned


def test_disabled_kernel_records_nothing():
    kernel = Kernel(config=KernelConfig())
    state = {}

    def receiver(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        state["port"] = port
        yield Recv(port=port)

    def sender(ctx):
        yield Send(state["port"], "x")

    kernel.spawn(receiver, "receiver")
    kernel.run()
    kernel.spawn(sender, "sender")
    kernel.run()
    assert kernel.metrics.snapshot() == {}
    assert kernel.spans is None


def test_kernel_snapshot_shape():
    kernel = _obs_kernel()

    def noop(ctx):
        yield NewPort()

    kernel.spawn(noop, "noop")
    kernel.run()
    snap = kernel_snapshot(kernel)
    for key in ("metrics", "clock", "drops", "label_ops", "memory", "scheduler", "steps"):
        assert key in snap
    assert snap["label_ops"]["fast_path"] == kernel.label_stats.fast_path
    assert snap["steps"] == kernel.steps_executed


def test_okws_component_counts(tmp_path):
    """The app.* metric scopes wired through demux/worker/dbproxy/cache."""
    from repro.okws import ServiceConfig, launch
    from repro.okws.services import session_cache_handler
    from repro.sim.workload import HttpClient

    site = launch(
        kernel=Kernel(config=KernelConfig(metrics=True)),
        services=[ServiceConfig("cache", session_cache_handler)],
        users=[("alice", "pw-a"), ("bob", "pw-b")],
    )
    client = HttpClient(site)
    client.request("alice", "pw-a", "cache", body=b"a1")
    client.request("alice", "pw-a", "cache", body=b"a2")
    client.request("bob", "pw-b", "cache", body=b"b1")

    metrics = site.kernel.metrics.snapshot()
    connects = [v for k, v in metrics.items() if k.endswith(".connects")]
    requests = [v for k, v in metrics.items() if k.endswith(".requests")]
    assert sum(connects) == 3
    assert sum(requests) == 3
    new = sum(v for k, v in metrics.items() if k.endswith(".session_new"))
    reuse = sum(v for k, v in metrics.items() if k.endswith(".session_reuse"))
    assert new == 2 and reuse == 1
