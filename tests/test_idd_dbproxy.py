"""idd and ok-dbproxy behaviour (paper Sections 7.4 and 7.5), tested
through a running OKWS site plus direct protocol probes."""

import pytest

from repro.core.levels import STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel.syscalls import Recv, Send
from repro.okws import ServiceConfig, launch
from repro.okws.services import notes_handler
from repro.sim.workload import HttpClient


@pytest.fixture()
def site():
    return launch(
        services=[ServiceConfig("notes", notes_handler)],
        users=[("alice", "pw-a"), ("bob", "pw-b")],
        schema=["CREATE TABLE notes (author TEXT, text TEXT)"],
    )


def probe(site, script, name="probe"):
    """Run a script(ctx, chan) process against the site; returns the proc."""

    def body(ctx):
        chan = yield from Channel.open()
        ctx.env["result"] = yield from script(ctx, chan)

    proc = site.kernel.spawn(body, name)
    site.kernel.run()
    return proc


# -- idd ---------------------------------------------------------------------------------


def test_idd_login_success_returns_handles(site):
    def script(ctx, chan):
        r = yield from chan.call(
            site.idd_port, P.request(P.LOGIN, user="alice", password="pw-a")
        )
        from repro.kernel import GetLabels
        send, _ = yield GetLabels()
        return {
            "ok": r.payload["ok"],
            "uid": r.payload["uid"],
            "taint_level": send(r.payload["taint"]),
            "grant_level": send(r.payload["grant"]),
        }

    proc = probe(site, script)
    result = proc.env["result"]
    assert result["ok"] and result["uid"] == 1
    # The LOGIN_R's DS granted both handles at ⋆ (step 4, Figure 5).
    assert result["taint_level"] == STAR
    assert result["grant_level"] == STAR


def test_idd_login_caches_handles(site):
    def script(ctx, chan):
        r1 = yield from chan.call(
            site.idd_port, P.request(P.LOGIN, user="alice", password="pw-a")
        )
        r2 = yield from chan.call(
            site.idd_port, P.request(P.LOGIN, user="alice", password="pw-a")
        )
        return (r1.payload, r2.payload)

    proc = probe(site, script)
    r1, r2 = proc.env["result"]
    assert r1["taint"] == r2["taint"]
    assert r1["grant"] == r2["grant"]


def test_idd_login_bad_password(site):
    def script(ctx, chan):
        r = yield from chan.call(
            site.idd_port, P.request(P.LOGIN, user="alice", password="nope")
        )
        return r.payload

    assert probe(site, script).env["result"] == {"type": P.LOGIN_R, "ok": False}


def test_idd_affirm_checks_binding(site):
    def script(ctx, chan):
        login = yield from chan.call(
            site.idd_port, P.request(P.LOGIN, user="alice", password="pw-a")
        )
        good = yield from chan.call(
            site.idd_port,
            P.request(
                "AFFIRM",
                uid=login.payload["uid"],
                taint=login.payload["taint"],
                grant=login.payload["grant"],
            ),
        )
        bad = yield from chan.call(
            site.idd_port,
            P.request("AFFIRM", uid=login.payload["uid"], taint=12345, grant=678),
        )
        return (good.payload["ok"], bad.payload["ok"])

    assert probe(site, script).env["result"] == (True, False)


def test_idd_send_label_grows_two_stars_per_user(site):
    client = HttpClient(site)
    idd = next(p for p in site.kernel.processes.values() if p.name == "idd")
    before = len(idd.send_label)
    client.request("alice", "pw-a", "notes", args={"op": "list"})
    client.request("bob", "pw-b", "notes", args={"op": "list"})
    after = len(idd.send_label)
    # Two handles per user (Section 9.3): uT and uG, held at ⋆.
    assert after == before + 4
    # Re-login does not grow it further.
    client.request("alice", "pw-a", "notes", args={"op": "list"})
    assert len(idd.send_label) == after


# -- ok-dbproxy -------------------------------------------------------------------------


def test_admin_port_requires_admin_handle(site):
    # A stranger cannot reach the raw SQL interface at all: the port label
    # {admin 0, 2} drops the message in the kernel.
    def script(ctx, chan):
        yield Send(
            site.dbproxy_admin_port,
            dict(P.request(P.QUERY, sql="SELECT * FROM users"), reply=chan.port),
        )
        msg = yield Recv(port=chan.port, block=False)
        return msg

    before = site.kernel.drop_log.count("label-check")
    proc = probe(site, script)
    assert proc.env["result"] is None
    assert site.kernel.drop_log.count("label-check") == before + 1


def test_public_port_rejects_user_id_column(site):
    def script(ctx, chan):
        r = yield from chan.call(
            site.dbproxy_port,
            P.request(P.QUERY, sql="SELECT _user_id FROM notes", uid=1),
        )
        return r.payload

    result = probe(site, script).env["result"]
    assert result["type"] == P.ERROR_R
    assert "private" in result["error"]


def test_public_port_rejects_schema_changes(site):
    def script(ctx, chan):
        r = yield from chan.call(
            site.dbproxy_port,
            P.request(P.QUERY, sql="CREATE TABLE evil (x INTEGER)", uid=1),
        )
        return r.payload

    assert probe(site, script).env["result"]["type"] == P.ERROR_R


def test_write_without_verify_rejected(site):
    def script(ctx, chan):
        # uid 1 exists (alice logged in during fixture? ensure via login)
        yield from chan.call(
            site.idd_port, P.request(P.LOGIN, user="alice", password="pw-a")
        )
        r = yield from chan.call(
            site.dbproxy_port,
            P.request(
                P.QUERY, sql="INSERT INTO notes (author, text) VALUES ('a', 'x')", uid=1
            ),
        )
        return r.payload

    result = probe(site, script).env["result"]
    assert result["type"] == P.ERROR_R


def test_write_with_unknown_uid_rejected(site):
    def script(ctx, chan):
        r = yield from chan.call(
            site.dbproxy_port,
            P.request(
                P.QUERY, sql="INSERT INTO notes (author, text) VALUES ('z', 'x')", uid=999
            ),
        )
        return r.payload

    result = probe(site, script).env["result"]
    assert "unknown user" in result["error"]


def test_select_returns_public_rows_untainted(site):
    # Seed a public row via the launcher-side admin channel... easiest:
    # declassified rows are _user_id = 0; BULK_INSERT defaults to public.
    client = HttpClient(site)
    client.request("alice", "pw-a", "notes", body="mine", args={"op": "add"})

    def script(ctx, chan):
        rows = []
        yield Send(
            site.dbproxy_port,
            dict(
                P.request(P.QUERY, sql="SELECT author, text FROM notes", uid=None),
                reply=chan.port,
            ),
        )
        while True:
            msg = yield Recv(port=chan.port)
            if msg.payload["type"] == P.DONE_R:
                return rows
            if msg.payload["type"] == P.ROW_R:
                rows.append(msg.payload["row"])

    # The probe is untainted: alice's private row is dropped by the kernel,
    # so the probe sees nothing — and cannot tell how many rows were sent.
    assert probe(site, script).env["result"] == []
