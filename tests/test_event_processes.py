"""Event processes (paper Section 6): creation, isolation, labels,
ep_yield/ep_clean/ep_exit, memory accounting, and execution-state sharing."""


from repro.core.labels import Label
from repro.core.levels import L1, L3, STAR
from repro.kernel import (
    ChangeLabel,
    EpCheckpoint,
    EpClean,
    EpExit,
    EpYield,
    Exit,
    GetLabels,
    NewHandle,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
)
from repro.kernel.event_process import EP_STRUCT_BYTES
from repro.kernel.memory import PAGE_SIZE
from repro.kernel.process import PROCESS_STRUCT_BYTES, TaskState


def open_port():
    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    return port


def spawn_ep_worker(kernel, event_body, name="worker"):
    """A base process that opens a public port and enters the EP realm."""

    def body(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)

    proc = kernel.spawn(body, name)
    kernel.run()
    return proc


def test_kernel_struct_sizes_match_paper():
    # "...altogether occupying 44 bytes of Asbestos kernel memory.  For
    # comparison, Asbestos's minimal process structure takes 320 bytes."
    assert EP_STRUCT_BYTES == 44
    assert PROCESS_STRUCT_BYTES == 320


def test_new_ep_per_message_to_base_port(kernel):
    seen = []

    def event_body(ectx, msg):
        seen.append((ectx.name, msg.payload))
        return
        yield

    worker = spawn_ep_worker(kernel, event_body)

    def driver(ctx):
        yield Send(ctx.env["t"], "a")
        yield Send(ctx.env["t"], "b")

    kernel.spawn(driver, "driver", env={"t": worker.env["port"]})
    kernel.run()
    # Two messages to the base port -> two distinct event processes.
    assert [payload for _, payload in seen] == ["a", "b"]
    assert seen[0][0] != seen[1][0]


def test_base_process_never_runs_again(kernel):
    after_checkpoint = []

    def event_body(ectx, msg):
        return
        yield

    def body(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)
        after_checkpoint.append("ran!")  # must never execute

    proc = kernel.spawn(body, "worker")
    kernel.run()
    kernel.inject(proc.env["port"], "x")
    kernel.run()
    assert proc.state == TaskState.EP_REALM
    assert after_checkpoint == []


def test_ep_yield_resumes_same_ep_with_state(kernel):
    log = []

    def event_body(ectx, msg):
        count = 0
        my_port = yield from open_port()
        yield Send(msg.payload["reply"], {"port": my_port})
        while True:
            count += 1
            log.append((ectx.name, msg.payload.get("tag"), count))
            msg = yield EpYield()

    worker = spawn_ep_worker(kernel, event_body)
    results = []

    def driver(ctx):
        reply = yield from open_port()
        yield Send(ctx.env["t"], {"reply": reply, "tag": "first"})
        m = yield Recv(port=reply)
        ep_port = m.payload["port"]
        yield Send(ep_port, {"tag": "second"})
        yield Send(ep_port, {"tag": "third"})

    kernel.spawn(driver, "driver", env={"t": worker.env["port"]})
    kernel.run()
    names = {name for name, _, _ in log}
    assert len(names) == 1                      # same EP throughout
    assert [(tag, n) for _, tag, n in log] == [
        ("first", 1), ("second", 2), ("third", 3)
    ]


def test_ep_memory_isolated_between_eps(kernel):
    log = []

    def event_body(ectx, msg):
        # Each EP sees the base's page pristine, then privatises it.
        base_region = ectx.mem.region("shared")
        before = ectx.mem.read(base_region.start, 2)
        ectx.mem.write(base_region.start, msg.payload.encode())
        after = ectx.mem.read(base_region.start, 2)
        log.append((before, after))
        return
        yield

    def body(ctx):
        start = ctx.mem.alloc(PAGE_SIZE, "shared")
        ctx.mem.write(start, b"__")
        port = yield from open_port()
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)

    proc = kernel.spawn(body, "worker")
    kernel.run()
    kernel.inject(proc.env["port"], "AA")
    kernel.inject(proc.env["port"], "BB")
    kernel.run()
    # Both EPs started from the base contents; neither saw the other's write.
    assert log == [(b"__", b"AA"), (b"__", b"BB")]


def test_ep_labels_start_from_base_and_diverge(kernel):
    log = []

    def event_body(ectx, msg):
        h = yield NewHandle()
        yield ChangeLabel(send=Label({h: STAR}, L1).with_entry(h, L3))
        send, _ = yield GetLabels()
        log.append(send(h))
        return
        yield

    worker = spawn_ep_worker(kernel, event_body)
    kernel.inject(worker.env["port"], "a")
    kernel.inject(worker.env["port"], "b")
    kernel.run()
    # Each EP self-tainted independently; the base process's label did not
    # change, so the second EP started clean and could do the same.
    assert log == [L3, L3]
    assert len(worker.send_label) == 1  # just the base port's ⋆


def test_ep_contamination_applies_to_ep_only(kernel):
    log = []

    def event_body(ectx, msg):
        send, receive = yield GetLabels()
        log.append((msg.payload["who"], dict(send.entries())))
        return
        yield

    worker = spawn_ep_worker(kernel, event_body)

    def driver(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        yield Send(
            ctx.env["t"],
            {"who": "tainted"},
            contaminate=Label({h: L3}, STAR),
            decontaminate_receive=Label({h: L3}, STAR),
        )
        yield Send(ctx.env["t"], {"who": "clean"})

    d = kernel.spawn(driver, "driver", env={"t": worker.env["port"]})
    kernel.run()
    h = d.env["h"]
    taints = {who: labels for who, labels in log}
    assert taints["tainted"].get(h) == L3
    assert h not in taints["clean"]          # fresh EP, fresh labels
    assert h not in dict(worker.send_label.iter_entries())


def test_ep_clean_reverts_pages(kernel):
    log = []

    def event_body(ectx, msg):
        region = ectx.mem.region("shared")
        while True:
            ectx.mem.write(region.start, b"dirty")
            ectx.mem.store("session", {"n": msg.payload})
            dropped = yield EpClean(keep=("session",))
            log.append((dropped, ectx.mem.read(region.start, 5), ectx.mem.load("session")))
            msg = yield EpYield()

    def body(ctx):
        start = ctx.mem.alloc(PAGE_SIZE, "shared")
        ctx.mem.write(start, b"clean")
        port = yield from open_port()
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)

    proc = kernel.spawn(body, "worker")
    kernel.run()
    kernel.inject(proc.env["port"], 1)
    kernel.run()
    dropped, shared, session = log[0]
    assert shared == b"clean"               # reverted to base contents
    assert session == {"n": 1}              # session region survived
    assert dropped >= 3                     # stack, xstack, msgq, shared


def test_ep_exit_frees_resources(kernel):
    def event_body(ectx, msg):
        ectx.mem.store("session", "x" * 2000)
        yield EpExit()

    worker = spawn_ep_worker(kernel, event_body)
    pages_before = kernel.accountant.in_use
    kernel.inject(worker.env["port"], "go")
    kernel.run()
    assert kernel.accountant.in_use == pages_before
    assert worker.event_processes == {}


def test_return_from_event_body_acts_like_ep_exit(kernel):
    def event_body(ectx, msg):
        return
        yield

    worker = spawn_ep_worker(kernel, event_body)
    kernel.inject(worker.env["port"], "go")
    kernel.run()
    assert worker.event_processes == {}


def test_exit_from_ep_kills_whole_process(kernel):
    # "...or even exit via the process-wide exit system call" (§6.1).
    def event_body(ectx, msg):
        yield Exit()

    worker = spawn_ep_worker(kernel, event_body)
    kernel.inject(worker.env["port"], "die")
    kernel.run()
    assert worker.state == TaskState.EXITED


def test_blocked_ep_blocks_whole_process(kernel):
    # Execution states are not isolated (§6.1).
    log = []

    def event_body(ectx, msg):
        if msg.payload["role"] == "blocker":
            stall = yield NewPort()
            yield SetPortLabel(stall, Label.top())
            yield Send(msg.payload["reply"], {"stall": stall})
            yield Recv(port=stall)            # blocks the whole process
            log.append("unblocked")
            yield EpYield()
        else:
            log.append("other-ran")
            yield EpYield()

    worker = spawn_ep_worker(kernel, event_body)
    plan = []

    def driver(ctx):
        reply = yield from open_port()
        yield Send(ctx.env["t"], {"role": "blocker", "reply": reply})
        m = yield Recv(port=reply)
        yield Send(ctx.env["t"], {"role": "other"})   # cannot run yet
        plan.append(list(log))                        # snapshot: must be empty
        yield Send(m.payload["stall"], "release")

    kernel.spawn(driver, "driver", env={"t": worker.env["port"]})
    kernel.run()
    assert plan == [[]]                      # nothing ran while blocked
    assert log == ["unblocked", "other-ran"]


def test_dormant_eps_cost_no_scheduling(kernel):
    # A thousand dormant EPs: delivering to one is O(ready ports), not
    # O(EPs) — verified behaviourally (it completes fast) and by the
    # scheduler seeing a single schedulable key.
    def event_body(ectx, msg):
        my_port = yield from open_port()
        yield Send(msg.payload["reply"], {"port": my_port, "n": msg.payload["n"]})
        while True:
            msg = yield EpYield()
            yield Send(msg.payload["reply"], {"n": msg.payload["n"]})

    worker = spawn_ep_worker(kernel, event_body)
    ep_ports = {}

    def driver(ctx):
        reply = yield from open_port()
        for n in range(300):
            yield Send(ctx.env["t"], {"reply": reply, "n": n})
            m = yield Recv(port=reply)
            ep_ports[m.payload["n"]] = m.payload["port"]
        # Now ping one specific dormant EP.
        yield Send(ep_ports[137], {"reply": reply, "n": 137})
        m = yield Recv(port=reply)
        assert m.payload["n"] == 137

    kernel.spawn(driver, "driver", env={"t": worker.env["port"]})
    kernel.run()
    assert len(worker.event_processes) == 300


def test_ep_kernel_bytes_grow_with_modified_pages(kernel):
    sizes = []

    def event_body(ectx, msg):
        ectx.mem.store("session", b"x" * 100)
        yield EpYield()

    worker = spawn_ep_worker(kernel, event_body)
    kernel.inject(worker.env["port"], "go")
    kernel.run()
    ep = next(iter(worker.event_processes.values()))
    assert ep.kernel_bytes() >= EP_STRUCT_BYTES
    assert ep.kernel_bytes() == EP_STRUCT_BYTES + 12 * ep.view.private_page_count
