"""End-to-end chaos campaigns (``repro.faults.campaign``) and the
supervision/degradation story they exercise.

These are the integration tests for the whole reliability stack: the
campaigns boot a real OKWS site, inject the shipped example fault plans,
and audit the same invariants ``python -m repro chaos`` enforces in CI —
no label leaks, every fault accounted for, completion above the floor,
byte-identical replay.
"""

import json
import pathlib

import pytest

from repro.faults import FaultPlan, FaultRule, load_plan
from repro.faults.campaign import MIN_COMPLETION, run_campaign

PLANS = pathlib.Path(__file__).resolve().parent.parent / "examples" / "faultplans"


def test_example_plans_parse():
    shipped = sorted(p.name for p in PLANS.glob("*.json"))
    assert shipped == ["message-drop.json", "queue-squeeze.json", "worker-crash.json"]
    for path in PLANS.glob("*.json"):
        plan = load_plan(str(path))
        assert len(plan) >= 1
        assert plan.description


def test_empty_plan_campaign_is_perfect():
    result = run_campaign(FaultPlan.of(), seed=0)
    assert result.passed
    assert result.completion_rate == 1.0
    assert result.injected_total == 0
    assert result.violations == 0
    assert result.events_json == run_campaign(FaultPlan.of(), seed=0).events_json


@pytest.mark.parametrize(
    "plan_file", ["message-drop.json", "worker-crash.json", "queue-squeeze.json"]
)
def test_shipped_plans_pass_at_seed_zero(plan_file):
    plan = load_plan(str(PLANS / plan_file))
    result = run_campaign(plan, seed=0)
    assert result.checks["sanitizer_clean"], "faults must never leak across labels"
    assert result.checks["drops_reconcile"]
    assert result.checks["squeezes_reconcile"]
    assert result.checks["metrics_reconcile"]
    assert result.completion_rate >= MIN_COMPLETION
    assert result.passed
    # The campaign is not vacuous: the plan actually fired.
    assert result.injected_total > 0


def test_campaign_replay_is_byte_identical():
    plan = load_plan(str(PLANS / "message-drop.json"))
    a = run_campaign(plan, seed=3)
    b = run_campaign(plan, seed=3)
    assert a.events_json == b.events_json
    assert a.completed == b.completed
    assert a.fault_summary == b.fault_summary
    c = run_campaign(plan, seed=4)
    assert a.events_json != c.events_json


def test_worker_crash_campaign_supervises_restart():
    plan = load_plan(str(PLANS / "worker-crash.json"))
    result = run_campaign(plan, seed=0)
    assert result.passed
    assert [r["service"] for r in result.restarts] == ["echo"]
    assert result.restarts[0]["crashed"] is True
    assert result.failed_services == []


def test_crash_storm_fails_the_service_and_degrades_gracefully():
    """A worker that cannot stay up: supervision burns its restart budget
    (or trips the storm detector), marks the service FAILED, and the
    demux answers 503 instead of wedging — with zero label leaks."""
    storm = FaultPlan.of(
        FaultRule(kind="crash", id="storm", match="worker-echo*", p=0.05),
        description="unsurvivable crash storm",
    )
    result = run_campaign(storm, seed=0)
    assert result.failed_services == ["echo"]
    assert result.degraded_503 > 0
    assert result.checks["sanitizer_clean"]
    assert result.checks["drops_reconcile"]
    assert result.checks["metrics_reconcile"]
    # Liveness is *expected* to fail here — that is what FAILED means.
    assert not result.checks["completion"]
    assert not result.passed


def test_campaign_report_is_json_serialisable():
    plan = load_plan(str(PLANS / "message-drop.json"))
    result = run_campaign(plan, seed=0)
    doc = json.loads(json.dumps(result.to_json()))
    assert doc["schema"] == "chaos-campaign/v1"
    assert doc["passed"] is True
    assert doc["requests"] == 32
    assert doc["fault_log"]["schema"] == "faultlog/v1"
    assert doc["fault_log"]["seed"] == 0
    assert len(doc["fault_log"]["events"]) == doc["injected_total"]
    lines = result.summary_lines()
    assert any("requests:" in line for line in lines)
    assert any(line.startswith("PASS") for line in lines)


def test_campaign_reports_recovery_statistics(tmp_path):
    """A store-backed campaign that kills ok-dbproxy must surface the
    per-seed recovery/restart accounting in its summary JSON."""
    plan = FaultPlan.of(
        FaultRule(kind="crash", id="dbx", match="ok-dbproxy", p=1.0, max_fires=1)
    )
    result = run_campaign(plan, seed=0, store_path=str(tmp_path / "wal.log"))
    assert result.recoveries == 1
    assert result.restart_budget == {"ok-dbproxy": 1}
    doc = json.loads(json.dumps(result.to_json()))
    assert doc["recoveries"] == 1
    assert doc["restart_budget"] == {"ok-dbproxy": 1}
    assert any("recoveries: 1" in line for line in result.summary_lines())

    # Without a store the same crash restarts but never recovers.
    memory = run_campaign(plan, seed=0)
    assert memory.recoveries == 0
    assert memory.restart_budget == {"ok-dbproxy": 1}
    assert memory.to_json()["recoveries"] == 0
