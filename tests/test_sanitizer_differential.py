"""The runtime IFC sanitizer: differential fused-vs-naive checking.

Drives random label/DS/V/DR combinations through live kernel IPC with the
sanitizer enabled in strict mode (any fused/naive disagreement raises),
then deliberately corrupts each fused fast path and asserts the sanitizer
flags exactly that corruption.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sanitizer import (
    CHECK_MISMATCH,
    RECEIVE_EFFECT_MISMATCH,
    SEND_EFFECT_MISMATCH,
    SanitizerViolation,
)
from repro.core import labelops
from repro.core.labels import Label
from repro.core.levels import ALL_LEVELS, L2, L3, STAR
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import NewHandle, NewPort, Recv, Send, SetPortLabel

levels = st.sampled_from(ALL_LEVELS)
labels = st.builds(
    Label,
    st.dictionaries(st.integers(min_value=1, max_value=12), levels, max_size=5),
    default=levels,
)


# -- the property: random IPC label combinations never trip the sanitizer -----------


@given(cs=labels, ds=labels, v=labels, dr=labels, port_label=labels)
@settings(max_examples=60, deadline=None)
def test_random_labels_fused_agrees_with_naive(cs, ds, v, dr, port_label):
    # Strict mode: any fused/naive disagreement raises out of kernel.run().
    kernel = Kernel(config=KernelConfig(sanitize=True))

    def body(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, port_label)
        yield Send(
            port,
            {"x": 1},
            contaminate=cs,
            decontaminate_send=ds,
            verify=v,
            decontaminate_receive=dr,
        )
        yield Recv(port=port, block=False)

    kernel.spawn(body, "self-talker")
    kernel.run()
    assert kernel.sanitizer is not None
    assert kernel.sanitizer.violations == []
    # The send-time ES cross-check always ran; the delivery cross-check ran
    # unless requirements (2)/(3) dropped the message at send time.
    assert kernel.sanitizer.checked_sends == 1


@given(es=labels, qr=labels, dr=labels, v=labels, pr=labels)
@settings(max_examples=200)
def test_fused_check_matches_the_sanitizer_reference(es, qr, dr, v, pr):
    from repro.core.chunks import ChunkedLabel, OpStats

    fused = labelops.check_send(
        ChunkedLabel.from_label(es),
        ChunkedLabel.from_label(qr),
        ChunkedLabel.from_label(dr),
        ChunkedLabel.from_label(v),
        ChunkedLabel.from_label(pr),
        OpStats(),
    )
    naive = es <= ((qr | dr) & v & pr)
    assert fused == naive


# -- deliberate corruption must be flagged -------------------------------------------


def _run_pair(kernel: Kernel, sender_body) -> None:
    """A receiver blocked on an open port, then *sender_body* fires at it."""
    box = {}

    def receiver(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["box"]["port"] = port
        ctx.env["box"]["msg"] = yield Recv(port=port)

    kernel.spawn(receiver, "rx", env={"box": box})
    kernel.run()
    kernel.spawn(sender_body, "tx", env={"box": box})
    kernel.run()


def _violation_kinds(kernel: Kernel):
    return [v.kind for v in kernel.sanitizer.violations]


def test_corrupted_check_send_false_is_flagged(monkeypatch):
    monkeypatch.setattr(labelops, "check_send", lambda *args: False)
    kernel = Kernel(config=KernelConfig(sanitize=True, sanitize_strict=False))

    def sender(ctx):
        yield Send(ctx.env["box"]["port"], {"x": 1})

    _run_pair(kernel, sender)
    assert CHECK_MISMATCH in _violation_kinds(kernel)


def test_corrupted_check_send_true_is_flagged(monkeypatch):
    # The fused path waves through a send the Figure 4 check must drop
    # (contamination at 3 exceeds the default receive clearance 2).
    monkeypatch.setattr(labelops, "check_send", lambda *args: True)
    kernel = Kernel(config=KernelConfig(sanitize=True, sanitize_strict=False))

    def sender(ctx):
        h = yield NewHandle()
        yield Send(ctx.env["box"]["port"], {"x": 1}, contaminate=Label({h: L3}, STAR))

    _run_pair(kernel, sender)
    assert CHECK_MISMATCH in _violation_kinds(kernel)


def test_corrupted_send_effects_is_flagged(monkeypatch):
    # Contamination silently not applied: QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS⋆)
    # replaced by the identity.
    monkeypatch.setattr(
        labelops, "apply_send_effects", lambda qs, es, ds, stats=None: qs
    )
    kernel = Kernel(config=KernelConfig(sanitize=True, sanitize_strict=False))

    def sender(ctx):
        h = yield NewHandle()
        yield Send(ctx.env["box"]["port"], {"x": 1}, contaminate=Label({h: L2}, STAR))

    _run_pair(kernel, sender)
    assert SEND_EFFECT_MISMATCH in _violation_kinds(kernel)


def test_corrupted_raise_receive_is_flagged(monkeypatch):
    # QR ← QR ⊔ DR replaced by the identity: a granted receive-clearance
    # raise is silently lost.
    monkeypatch.setattr(labelops, "raise_receive", lambda qr, dr, stats=None: qr)
    kernel = Kernel(config=KernelConfig(sanitize=True, sanitize_strict=False))

    def sender(ctx):
        h = yield NewHandle()
        yield Send(
            ctx.env["box"]["port"], {"x": 1}, decontaminate_receive=Label({h: L3}, STAR)
        )

    _run_pair(kernel, sender)
    assert RECEIVE_EFFECT_MISMATCH in _violation_kinds(kernel)


def test_strict_mode_raises_on_corruption(monkeypatch):
    monkeypatch.setattr(labelops, "check_send", lambda *args: False)
    kernel = Kernel(config=KernelConfig(sanitize=True))  # strict by default

    def sender(ctx):
        yield Send(ctx.env["box"]["port"], {"x": 1})

    with pytest.raises(SanitizerViolation):
        _run_pair(kernel, sender)


# -- plumbing ------------------------------------------------------------------------


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Kernel().sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert Kernel().sanitizer is None
    monkeypatch.delenv("REPRO_SANITIZE")
    assert Kernel().sanitizer is None


def test_flow_tracer_carries_violations(monkeypatch):
    from repro.sim.trace import FlowTracer

    monkeypatch.setattr(labelops, "check_send", lambda *args: False)
    kernel = Kernel(config=KernelConfig(sanitize=True, sanitize_strict=False))
    tracer = FlowTracer(kernel)

    def sender(ctx):
        yield Send(ctx.env["box"]["port"], {"x": 1})

    _run_pair(kernel, sender)
    assert [v.kind for v in tracer.violations()] == [CHECK_MISMATCH]
    assert "SANITIZER[check-mismatch]" in tracer.format()
