"""Property tests: the fused kernel label operations are exactly
equivalent to the naive Figure 4 reference semantics."""

from hypothesis import given, settings, strategies as st

from repro.core import labelops as lo
from repro.core.chunks import ChunkedLabel, OpStats
from repro.core.labels import Label
from repro.core.levels import ALL_LEVELS, L1, L2, L3, STAR

levels = st.sampled_from(ALL_LEVELS)
labels = st.builds(
    Label,
    st.dictionaries(st.integers(min_value=0, max_value=80), levels, max_size=25),
    default=levels,
)


def _c(label: Label) -> ChunkedLabel:
    return ChunkedLabel.from_label(label)


@given(labels, labels, labels, labels, labels)
@settings(max_examples=300)
def test_check_send_matches_reference(es, qr, dr, v, pr):
    got = lo.check_send(_c(es), _c(qr), _c(dr), _c(v), _c(pr), OpStats())
    assert got == lo.check_send_reference(es, qr, dr, v, pr)


@given(labels, labels, labels)
@settings(max_examples=300)
def test_apply_send_effects_matches_reference(qs, es, ds):
    got = lo.apply_send_effects(_c(qs), _c(es), _c(ds), OpStats()).to_label()
    assert got == lo.apply_send_effects_reference(qs, es, ds)


@given(labels, labels)
@settings(max_examples=300)
def test_raise_receive_matches_reference(qr, dr):
    got = lo.raise_receive(_c(qr), _c(dr), OpStats()).to_label()
    assert got == (qr | dr)


@given(labels, st.dictionaries(st.integers(min_value=0, max_value=80), levels, max_size=8))
@settings(max_examples=300)
def test_sparse_update_matches_pointwise(label, updates):
    got = lo.sparse_update(_c(label), updates, OpStats()).to_label()
    want = label
    for handle, level in updates.items():
        want = want.with_entry(handle, level)
    assert got == want


@given(labels, labels, labels)
def test_effects_never_change_star_entries(qs, es, ds):
    # A receiver's * entries are immune to contamination; they change only
    # if DS (a grant) explicitly mentions them — and grants only *lower*,
    # and nothing is below *.
    got = lo.apply_send_effects(_c(qs), _c(es), _c(ds)).to_label()
    for handle in dict(qs.entries()):
        if qs(handle) == STAR:
            assert got(handle) == STAR


@given(labels, labels)
def test_contamination_only_raises(qs, es):
    # With no decontamination (DS = {3}), the send label can only rise.
    got = lo.apply_send_effects(_c(qs), _c(es), _c(Label.top())).to_label()
    assert qs <= got


@given(labels, labels)
def test_decontamination_only_lowers_toward_ds(qs, ds):
    # With no contamination (ES = {*}), the result is QS ⊓ DS.
    got = lo.apply_send_effects(_c(qs), _c(Label.bottom()), _c(ds)).to_label()
    assert got == (qs & ds)


# -- the modelled 2005 cost functions ---------------------------------------------------


def test_paper_cost_scales_with_big_receiver():
    big_qs = _c(Label({i: STAR for i in range(1, 2001)}, L1))
    small_es = _c(Label({5000: L3}, L1))
    ds = _c(Label.top())
    cost = lo.paper_cost_apply_effects(big_qs, small_es, ds)
    # The stars-only projection alone scans all 2000 entries.
    assert cost >= 2000


def test_paper_cost_no_stars_is_cheap():
    qs = _c(Label({i: L2 for i in range(1, 2001)}, L1))
    es = _c(Label({5000: L2}, L1))
    ds = _c(Label.top())
    # QS* = {3}: ES ⊓ {3} short-circuits, QS ⊓ {3} short-circuits, and the
    # final ⊔ must still merge — cost is one merge, not three.
    cost = lo.paper_cost_apply_effects(qs, es, ds)
    assert cost <= 2001 + 10


def test_paper_cost_check_skips_dominated_rhs():
    es = _c(Label({}, L1))
    qr = _c(Label({i: L3 for i in range(1, 1001)}, L2))
    dr = _c(Label.bottom())
    v = _c(Label.top())
    pr = _c(Label.top())
    # QR ⊔ {*} short-circuits; ⊓ {3} twice short-circuits; ES ⊑ rhs skips
    # the rhs scan because ES's default (1) is below the rhs minimum (2).
    assert lo.paper_cost_check_send(es, qr, dr, v, pr) == 0


def test_paper_cost_check_scans_when_port_label_restricts():
    es = _c(Label({}, L1))
    qr = _c(Label({i: L3 for i in range(1, 1001)}, L2))
    dr = _c(Label.bottom())
    v = _c(Label.top())
    # A port label that interleaves with QR's levels (neither operand
    # dominates): the modelled implementation must do the full merge.
    pr = _c(Label({77: 0}, L3))
    assert lo.paper_cost_check_send(es, qr, dr, v, pr) >= 1000


# -- sparse_update boundary structure: normalisation, routing, chunk sharing ------------

from repro.core.chunks import CHUNK_CAPACITY  # noqa: E402

handles = st.integers(min_value=0, max_value=80)


@given(labels, st.sets(handles, max_size=8))
@settings(max_examples=300)
def test_sparse_update_normalises_default_updates_away(label, touched):
    # Writing the default level at a handle must *remove* its explicit
    # entry, not store a redundant one — canonical form is what makes
    # structurally equal labels intern to one id.
    got = lo.sparse_update(_c(label), {h: label.default for h in touched}, OpStats())
    assert all(lvl != got.default for _, lvl in got.iter_entries())
    want = label
    for h in touched:
        want = want.with_entry(h, label.default)
    assert got.to_label() == want


def test_sparse_update_empty_updates_is_identity():
    chunked = _c(Label({1: L3}, L1))
    assert lo.sparse_update(chunked, {}, OpStats()) is chunked


@given(st.dictionaries(handles, levels, max_size=8), levels)
@settings(max_examples=300)
def test_sparse_update_on_the_empty_label(updates, default):
    got = lo.sparse_update(_c(Label({}, default)), updates, OpStats())
    assert got.to_label() == Label(updates, default)


def test_sparse_update_shares_untouched_chunks():
    label = _c(Label({i * 3: L3 for i in range(200)}, L1))
    assert len(label.chunks) == 4
    target = label.chunks[2].entries[0][0]
    stats = OpStats()
    got = lo.sparse_update(label, {target: L2}, stats)
    assert got.to_label() == Label({i * 3: L3 for i in range(200)}, L1).with_entry(
        target, L2
    )
    # Only the routed chunk is rewritten; the other three are shared by
    # object identity.
    assert stats.chunks_shared == 3
    assert stats.chunks_allocated == 1
    for i in (0, 1, 3):
        assert got.chunks[i] is label.chunks[i]
    assert got.chunks[2] is not label.chunks[2]


# -- _balanced_runs: minimum chunk count, even sizes --------------------------------


@given(st.lists(st.tuples(st.integers(0, 10_000), levels), max_size=300))
@settings(max_examples=300)
def test_balanced_runs_partition_evenly(entries):
    runs = lo._balanced_runs(entries)
    assert [e for run in runs for e in run] == list(entries)
    if not entries:
        assert runs == []
        return
    sizes = [len(run) for run in runs]
    assert len(runs) == -(-len(entries) // CHUNK_CAPACITY)  # ceil division
    assert max(sizes) <= CHUNK_CAPACITY
    assert min(sizes) >= 1
    assert max(sizes) - min(sizes) <= 1  # evenly sized, no [64, 1] splits


def test_balanced_runs_ceil_boundaries():
    for n in (
        1,
        CHUNK_CAPACITY - 1,
        CHUNK_CAPACITY,
        CHUNK_CAPACITY + 1,
        2 * CHUNK_CAPACITY,
        2 * CHUNK_CAPACITY + 1,
    ):
        runs = lo._balanced_runs([(i, L2) for i in range(n)])
        sizes = [len(run) for run in runs]
        assert len(runs) == -(-n // CHUNK_CAPACITY)
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
