"""Scheduler edge cases: idempotent re-enqueue, blocked→runnable churn
under lazy deletion (slot resurrection), the amortized work bound, and
the explorer's ``runnable``/``take`` contract (index *i* of
``runnable()`` is exactly the key the (i+1)-th consecutive ``dequeue``
would return)."""

from collections import deque

import pytest

from repro.kernel.scheduler import Scheduler


def drain(sched: Scheduler):
    out = []
    while sched:
        out.append(sched.dequeue())
    return out


def test_enqueue_idempotent_while_runnable():
    sched = Scheduler()
    sched.enqueue("a")
    sched.enqueue("a")
    sched.enqueue("a")
    assert len(sched) == 1
    assert drain(sched) == ["a"]


def test_reenqueue_after_dequeue_lands_at_back():
    sched = Scheduler()
    for key in ("a", "b", "c"):
        sched.enqueue(key)
    assert sched.dequeue() == "a"
    sched.enqueue("a")
    assert drain(sched) == ["b", "c", "a"]


def test_block_then_wake_resurrects_original_slot():
    """Lazy deletion's observable semantics: a key that blocks and wakes
    before its stale entry surfaces keeps its original turn (eager
    removal would send it to the back).  Pinned because the explorer's
    ``runnable()`` must present the same order."""
    sched = Scheduler()
    for key in ("a", "b", "c"):
        sched.enqueue(key)
    sched.remove("b")
    sched.enqueue("b")
    assert sched.runnable() == ["a", "b", "c"]
    assert drain(sched) == ["a", "b", "c"]


def test_block_then_wake_after_surfacing_lands_at_back():
    """Once the stale entry has been consumed, a re-enqueue is a genuine
    arrival at the back."""
    sched = Scheduler()
    for key in ("a", "b", "c"):
        sched.enqueue(key)
    sched.remove("b")
    assert sched.dequeue() == "a"
    assert sched.dequeue() == "c"  # skips b's stale entry, consuming it
    sched.enqueue("b")
    assert drain(sched) == ["b"]


def test_churn_against_stable_background():
    sched = Scheduler()
    sched.enqueue("x")
    sched.enqueue("y")
    for _ in range(100):
        sched.remove("y")
        sched.enqueue("y")
    # Every churn cycle resurrected y's original slot; x still first.
    assert drain(sched) == ["x", "y"]


def test_lazy_deletion_work_bound():
    """Each enqueue is paid for by at most one popleft, ever — O(runnable)
    amortized per operation, never O(history).  Churn does append
    duplicate entries, but only the earliest is live; the rest are
    skipped (and paid for) exactly once each when they surface."""

    class CountingDeque(deque):
        popped = 0

        def popleft(self):
            CountingDeque.popped += 1
            return super().popleft()

    sched = Scheduler()
    sched._queue = CountingDeque()
    enqueues = 0
    for key in ("a", "b", "c", "d"):
        sched.enqueue(key)
        enqueues += 1
    for _ in range(500):
        sched.remove("c")
        sched.enqueue("c")
        enqueues += 1
    # One duplicate per churn cycle; the earliest occurrence stays live.
    assert len(sched._queue) == 504
    assert drain(sched) == ["a", "b", "c", "d"]
    # The buried duplicates survive the drain as stale entries; the next
    # dequeue pays each exactly once, and the lifetime total never
    # exceeds one popleft per enqueue.
    sched.enqueue("e")
    enqueues += 1
    assert sched.dequeue() == "e"
    assert len(sched._queue) == 0
    assert CountingDeque.popped <= enqueues


def test_runnable_matches_consecutive_dequeue_order():
    sched = Scheduler()
    for key in ("a", "b", "c", "d"):
        sched.enqueue(key)
    sched.remove("b")
    sched.remove("d")
    sched.enqueue("b")          # resurrects slot 2
    assert sched.runnable() == ["a", "b", "c"]
    assert drain(sched) == ["a", "b", "c"]


def test_take_consumes_exactly_the_dequeue_entry():
    sched = Scheduler()
    for key in ("a", "b", "c"):
        sched.enqueue(key)
    sched.take("b")
    assert "b" not in sched
    # b's entry is gone eagerly, so a re-enqueue is a genuine arrival at
    # the back — the same as dequeue-then-enqueue on the FIFO path.
    sched.enqueue("b")
    assert sched.runnable() == ["a", "c", "b"]
    assert drain(sched) == ["a", "c", "b"]


def test_take_nonrunnable_raises():
    sched = Scheduler()
    sched.enqueue("a")
    with pytest.raises(KeyError):
        sched.take("zombie")
    sched.take("a")
    with pytest.raises(KeyError):
        sched.take("a")
