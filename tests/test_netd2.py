"""The decomposed network server (paper Section 7.8, built here):
protocol-compatible with classic netd, with user isolation enforced
*inside* the stack — each connection's TCP state is an event process
carrying that user's taint, and the trusted front end firewalls egress
against verification labels."""

import pytest

from repro.core.labels import Label
from repro.core.levels import L2, L3, STAR
from repro.ipc import protocol as P
from repro.kernel.syscalls import NewHandle, Send
from repro.okws import ServiceConfig, launch
from repro.okws.services import echo_handler, notes_handler, session_cache_handler
from repro.sim.workload import HttpClient


@pytest.fixture()
def site():
    return launch(
        services=[
            ServiceConfig("cache", session_cache_handler),
            ServiceConfig("echo", echo_handler),
            ServiceConfig("notes", notes_handler),
        ],
        users=[("alice", "pw-a"), ("bob", "pw-b")],
        schema=["CREATE TABLE notes (author TEXT, text TEXT)"],
        network="decomposed",
    )


def test_okws_runs_unchanged_on_decomposed_stack(site):
    client = HttpClient(site)
    r1 = client.request("alice", "pw-a", "cache", body=b"state-1")
    r2 = client.request("alice", "pw-a", "cache", body=b"state-2")
    assert r2.body.startswith(b"state-1")
    assert r2.payload["hits"] == 2
    assert client.request("bob", "pw-b", "echo", args={"length": 7}).body == "x" * 7
    assert client.request("alice", "nope", "echo").payload["status"] == 403


def test_db_isolation_still_holds(site):
    client = HttpClient(site)
    client.request("alice", "pw-a", "notes", body="a-secret", args={"op": "add"})
    client.request("bob", "pw-b", "notes", body="b-secret", args={"op": "add"})
    assert client.request("alice", "pw-a", "notes", args={"op": "list"}).body == ["a-secret"]
    assert client.request("bob", "pw-b", "notes", args={"op": "list"}).body == ["b-secret"]


def test_one_backend_ep_per_live_connection(site):
    client = HttpClient(site)
    backend = next(
        p for p in site.kernel.processes.values() if p.name == "netd-backend"
    )
    # During a batch the EPs exist; after the closes they are gone.
    client.run_batch(
        [("alice", "pw-a", "echo", None, None)] * 3, concurrency=3
    )
    assert len(backend.event_processes) == 0  # all closed and exited


def test_backend_eps_carry_user_taint(site):
    # Capture the EP mid-flight: issue requests without closing.
    client = HttpClient(site)
    kernel = site.kernel
    conn_id, opened = client._open("alice", "pw-a", "echo", None, None)
    kernel.run()
    backend = next(p for p in kernel.processes.values() if p.name == "netd-backend")
    eps = list(backend.event_processes.values())
    assert eps, "connection EP should be alive before close"
    ep = eps[0]
    # "Each back-end event process would be contaminated with respect to
    # the user on whose behalf it speaks" (§7.8).
    assert any(lvl == L3 for _, lvl in ep.send_label.iter_entries())
    client._collect(conn_id, opened)
    kernel.run()


def test_front_end_firewall_blocks_forged_egress(site):
    # A compromised process that somehow knows the egress port tries to
    # emit bytes for alice's connection while carrying bob's taint: the
    # verification label cannot be forged (ES ⊑ V), so the kernel drops
    # the send before the firewall even runs.
    client = HttpClient(site)
    kernel = site.kernel
    conn_id, opened = client._open("alice", "pw-a", "echo", None, None)
    kernel.run()
    front = next(p for p in kernel.processes.values() if p.name == "netd-front")
    # Find the egress port: the one front-end port with no label opening.
    egress_candidates = sorted(front.owned_ports)

    def attacker(ctx):
        h = yield NewHandle()
        from repro.kernel import ChangeLabel

        yield ChangeLabel(send=Label({h: STAR}, 1).with_entry(h, L3))  # tainted
        for port in ctx.env["ports"]:
            # Claim to be clean: V = {2}.  ES(h)=3 > 2: undeliverable.
            yield Send(
                port,
                P.request("EGRESS", conn_id=ctx.env["conn"], data=b"forged"),
                verify=Label({}, L2),
            )

    before_drops = kernel.drop_log.count("label-check")
    kernel.spawn(
        attacker, "attacker", env={"ports": egress_candidates, "conn": conn_id}
    )
    kernel.run()
    assert kernel.drop_log.count("label-check") > before_drops
    assert b"forged" not in [
        chunk for chunks in site.wire.outbound.values() for chunk in chunks
    ]
    client._collect(conn_id, opened)
    kernel.run()


def test_tainted_worker_cannot_use_foreign_connection(site):
    # Same invariant as classic netd, now enforced by the per-connection
    # EP's port label.
    client = HttpClient(site)
    kernel = site.kernel
    a_conn, a_open = client._open("alice", "pw-a", "echo", None, None)
    kernel.run()
    backend = next(p for p in kernel.processes.values() if p.name == "netd-backend")
    ep = next(iter(backend.event_processes.values()))
    a_port = sorted(ep.owned_ports)[0]
    a_taint = [h for h, lvl in ep.send_label.iter_entries() if lvl == L3]

    def foreign(ctx):
        h = yield NewHandle()
        from repro.kernel import ChangeLabel

        yield ChangeLabel(send=Label({h: STAR}, 1).with_entry(h, L3))
        yield Send(a_port, P.request(P.WRITE, data=b"foreign-taint-bytes"))

    before = kernel.drop_log.count("label-check")
    kernel.spawn(foreign, "foreign")
    kernel.run()
    assert kernel.drop_log.count("label-check") > before
    client._collect(a_conn, a_open)
    kernel.run()
    out = [c for chunks in site.wire.outbound.values() for c in chunks]
    assert b"foreign-taint-bytes" not in out
