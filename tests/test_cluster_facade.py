"""The ``repro.cluster`` public facade: config, identity path, routing.

Everything here runs in-process (``n_shards=1``) or exercises pure
routing logic — the multi-process paths live in
``test_cluster_differential.py``.
"""

from __future__ import annotations

import pytest

from repro import Cluster as LazyCluster
from repro.cluster import BatchResult, Cluster, ClusterConfig
from repro.cluster.router import requests_by_shard
from repro.kernel.config import KernelConfig
from repro.okws.sharding import courier_targets, partition_users, shard_of_user

USERS = tuple((f"user{i}", f"pw{i}") for i in range(6))


def _requests(n=12):
    return [
        (f"user{i % len(USERS)}", f"pw{i % len(USERS)}", "echo", None, {"length": 5})
        for i in range(n)
    ]


def test_cluster_is_reexported_from_repro():
    assert LazyCluster is Cluster


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_shards=0)
    with pytest.raises(ValueError):
        ClusterConfig(service="no-such-service")
    with pytest.raises(ValueError):
        ClusterConfig(concurrency=0)
    with pytest.raises(ValueError):
        ClusterConfig(sanitize_sample=-1)


def test_single_shard_keeps_the_boot_key_verbatim():
    config = ClusterConfig(n_shards=1, users=USERS)
    assert config.shard_kernel_config(0).boot_key == KernelConfig().boot_key


def test_multi_shard_derives_disjoint_boot_keys():
    config = ClusterConfig(n_shards=3, users=USERS)
    keys = {config.shard_kernel_config(s).boot_key for s in range(3)}
    assert len(keys) == 3
    for key in keys:
        assert key.startswith(KernelConfig().boot_key)


def test_sanitize_sample_override_reaches_shard_configs():
    config = ClusterConfig(
        n_shards=2, users=USERS, kernel=KernelConfig(sanitize=True), sanitize_sample=64
    )
    assert config.shard_kernel_config(0).sanitize_sample == 64
    assert config.shard_kernel_config(1).sanitize


def test_shard_of_user_is_stable_and_partition_covers():
    # CRC-based: the same name must land on the same shard in every
    # process, every run (Python's hash() is salted — unusable here).
    assert shard_of_user("alice", 4) == shard_of_user("alice", 4)
    assert shard_of_user("anything", 1) == 0
    parts = partition_users(USERS, 3)
    assert sorted(u for part in parts for u in part) == sorted(USERS)
    for shard, part in enumerate(parts):
        for name, _ in part:
            assert shard_of_user(name, 3) == shard


def test_requests_by_shard_preserves_per_shard_order():
    requests = _requests(12)
    parts = requests_by_shard(requests, 2)
    assert sum(len(p) for p in parts) == len(requests)
    for shard, part in enumerate(parts):
        assert part == [r for r in requests if shard_of_user(r[0], 2) == shard]


def test_courier_targets_are_shard_count_invariant():
    names = [name for name, _ in USERS]
    # The (port-independent) message multiset must depend only on the
    # user list: same payloads whether boards live on 1 shard or 4.
    def payload_set(n_shards):
        boards = {s: 1000 + s for s in range(n_shards)}
        parts = partition_users(USERS, n_shards)
        out = []
        for part in parts:
            for target in courier_targets(
                [n for n, _ in part], names, boards, n_shards
            ):
                out.append((target["payload"]["user"], target["payload"]["type"]))
        return sorted(out)

    assert payload_set(1) == payload_set(2) == payload_set(4)
    doomed = [p for p in payload_set(1) if p[1] == "DOOMED"]
    assert len(doomed) == len(names) // 2  # odd-indexed users only


def test_single_shard_cluster_runs_inline_and_deterministically():
    def run():
        with Cluster(ClusterConfig(n_shards=1, users=USERS)) as cluster:
            cluster.mark()
            result = cluster.run_batch(_requests())
            routed = cluster.run_courier()
            report = cluster.report()
        return result, routed, report

    first, routed_a, report_a = run()
    second, routed_b, report_b = run()
    assert isinstance(first, BatchResult)
    assert routed_a == routed_b == 0  # no peers, nothing crosses a wire
    # Bit-identical identity path: same outcomes, same simulated cycles.
    assert first.outcomes == second.outcomes
    assert first.busy_cycles == second.busy_cycles
    assert first.elapsed_cycles == first.busy_cycles[0]
    assert report_a["drops"] == report_b["drops"]
    # Every digest reached the (local) board; doomed variants dropped.
    digests = sorted(p["user"] for p in report_a["board_log"])
    assert digests == sorted(name for name, _ in USERS)
    assert report_a["drops"].get("label-check", 0) == len(USERS) // 2


def test_single_shard_sampled_sanitizer_is_clean():
    config = ClusterConfig(
        n_shards=1,
        users=USERS,
        kernel=KernelConfig(sanitize=True, intern_labels=True),
        sanitize_sample=8,
    )
    with Cluster(config) as cluster:
        cluster.run_batch(_requests())
        cluster.run_courier()
        report = cluster.report()
    assert report["sanitizer_violations"] == 0


def test_sampled_sanitizer_does_not_change_simulated_time():
    # Sampling gates only the *diagnostic* cross-check; the billed
    # kernel work must be identical whichever IPCs the sanitizer picks.
    def elapsed(sample):
        config = ClusterConfig(
            n_shards=1,
            users=USERS,
            kernel=KernelConfig(sanitize=True),
            sanitize_sample=sample,
        )
        with Cluster(config) as cluster:
            return cluster.run_batch(_requests()).elapsed_cycles

    assert elapsed(1) == elapsed(7)
