"""The fault-injection subsystem: plans, the injector, determinism.

The determinism property (same plan + same seed ⇒ the byte-identical
fault event log, different seeds ⇒ different decisions) is the load-
bearing promise of ``repro.faults`` — a chaos bug you cannot replay is
a chaos bug you cannot debug — so it gets Hypothesis property tests on
top of the example-based ones.  ``derandomize=True`` keeps the generated
examples themselves fixed from run to run: the suite must not be flaky
about testing non-flakiness.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.labels import Label
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.faults.plan import PlanError
from repro.kernel import Kernel, KernelConfig, NewPort, Recv, Send, SetPortLabel, Spawn
from repro.kernel.errors import (
    DROP_FAULT,
    DROP_QUEUE_LIMIT,
    ResourceExhausted,
)

# -- plan documents ----------------------------------------------------------


def test_plan_round_trips_through_json():
    plan = FaultPlan.of(
        FaultRule(kind="drop", id="d", match="worker-*", p=0.25),
        FaultRule(kind="delay", id="lag", rounds=3, p=0.5),
        FaultRule(kind="queue_limit", id="sq", limit=4, max_fires=2),
        FaultRule(kind="crash", id="boom", at_syscall=7),
        description="round-trip me",
    )
    again = FaultPlan.loads(plan.dumps())
    assert again == plan
    assert again.to_json() == plan.to_json()


@pytest.mark.parametrize(
    "doc, fragment",
    [
        ({"schema": "faultplan/v2", "rules": []}, "schema"),
        ({"rules": {}}, "array"),
        ({"rules": [{"p": 0.5}]}, "kind"),
        ({"rules": [{"kind": "melt"}]}, "unknown fault kind"),
        ({"rules": [{"kind": "drop", "p": 1.5}]}, "p must be"),
        ({"rules": [{"kind": "delay"}]}, "rounds"),
        ({"rules": [{"kind": "queue_limit"}]}, "limit"),
        ({"rules": [{"kind": "drop", "zap": 1}]}, "unknown keys"),
        ({"rules": [{"kind": "drop", "max_fires": 0}]}, "max_fires"),
        (
            {"rules": [{"kind": "drop", "id": "x"}, {"kind": "crash", "id": "x"}]},
            "duplicate",
        ),
    ],
)
def test_malformed_plans_rejected(doc, fragment):
    import json

    with pytest.raises(PlanError, match=fragment):
        FaultPlan.loads(json.dumps(doc))


def test_rules_get_stable_default_ids():
    plan = FaultPlan.loads('{"rules": [{"kind": "drop"}, {"kind": "crash"}]}')
    assert [r.id for r in plan.rules] == ["drop-0", "crash-1"]


# -- injector decision logic (no kernel needed) ------------------------------


def _drive_sends(injector, n=64, sender="tx", port=0x10):
    """Feed *n* send-admission decisions; return the action list."""
    return [injector.on_send(sender, port, step) for step in range(n)]


def test_same_seed_same_decisions():
    plan = FaultPlan.of(FaultRule(kind="drop", id="d", p=0.5))
    a = FaultInjector(plan, seed=7)
    b = FaultInjector(plan, seed=7)
    assert _drive_sends(a) == _drive_sends(b)
    assert a.events_json() == b.events_json()


def test_different_seeds_diverge():
    plan = FaultPlan.of(FaultRule(kind="drop", id="d", p=0.5))
    a = FaultInjector(plan, seed=0)
    b = FaultInjector(plan, seed=1)
    assert _drive_sends(a) != _drive_sends(b)


def test_disarmed_injector_is_inert_and_draws_nothing():
    """Disarmed hooks must not consume PRNG state: arming later has to
    replay exactly what an always-armed injector would have done."""
    plan = FaultPlan.of(FaultRule(kind="drop", id="d", p=0.5))
    inj = FaultInjector(plan, seed=3)
    inj.disarm()
    state = inj.rng.getstate()
    assert _drive_sends(inj, n=32) == [None] * 32
    assert inj.events == []
    assert inj.rng.getstate() == state
    inj.arm()
    fresh = FaultInjector(plan, seed=3)
    assert _drive_sends(inj) == _drive_sends(fresh)


def test_match_and_window_predicates():
    plan = FaultPlan.of(
        FaultRule(kind="drop", id="d", match="worker-*", p=1.0, after_step=10, until_step=20),
    )
    inj = FaultInjector(plan, seed=0)
    assert inj.on_send("netd", 1, 15) is None          # name mismatch
    assert inj.on_send("worker-echo", 1, 5) is None    # before window
    assert inj.on_send("worker-echo", 1, 20) is None   # window is half-open
    assert inj.on_send("worker-echo", 1, 15) == ("drop", 0)


def test_max_fires_caps_a_rule():
    plan = FaultPlan.of(FaultRule(kind="drop", id="d", p=1.0, max_fires=2))
    inj = FaultInjector(plan, seed=0)
    actions = _drive_sends(inj, n=5)
    assert actions == [("drop", 0), ("drop", 0), None, None, None]
    assert inj.fired("d") == 2


def test_queue_limit_respects_sender_predicate():
    plan = FaultPlan.of(FaultRule(kind="queue_limit", id="sq", match="netd", limit=3))
    inj = FaultInjector(plan, seed=0)
    assert inj.queue_limit("netd", 0x10, 0) == (3, plan.rules[0])
    assert inj.queue_limit("<wire>", 0x10, 0) is None


def test_smallest_matching_squeeze_wins():
    plan = FaultPlan.of(
        FaultRule(kind="queue_limit", id="loose", limit=9),
        FaultRule(kind="queue_limit", id="tight", limit=2),
    )
    inj = FaultInjector(plan, seed=0)
    limit, rule = inj.queue_limit("anyone", 0x10, 0)
    assert (limit, rule.id) == (2, "tight")


# -- Hypothesis: the determinism contract ------------------------------------

_RULE_P = st.floats(min_value=0.2, max_value=0.8)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(p=_RULE_P, seed=st.integers(min_value=0, max_value=2**32 - 1), n=st.integers(40, 120))
def test_property_same_seed_byte_identical_log(p, seed, n):
    plan = FaultPlan.of(
        FaultRule(kind="drop", id="d", p=p),
        FaultRule(kind="delay", id="lag", p=p / 2, rounds=2),
    )
    a = FaultInjector(plan, seed=seed)
    b = FaultInjector(plan, seed=seed)
    assert _drive_sends(a, n=n) == _drive_sends(b, n=n)
    assert a.events_json() == b.events_json()
    assert a.summary() == b.summary()


@settings(max_examples=25, deadline=None, derandomize=True)
@given(p=_RULE_P, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_different_seeds_diverge(p, seed):
    # With p in [0.2, 0.8] two independent 64-draw decision streams agree
    # with probability at most 0.68^64 ~= 2e-11; a collision here means
    # the seed is not actually feeding the PRNG.
    plan = FaultPlan.of(FaultRule(kind="drop", id="d", p=p))
    a = FaultInjector(plan, seed=seed)
    b = FaultInjector(plan, seed=seed + 1)
    assert _drive_sends(a) != _drive_sends(b)


# -- kernel integration: choke points end to end -----------------------------


def _flood(plan, seed, n=60):
    """Run a sender flooding a receiver under *plan*; return the kernel
    and the payloads that survived."""
    kernel = Kernel(config=KernelConfig(metrics=True, faults=plan, fault_seed=seed))
    received = []

    def receiver(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        # First receive untimed: the flood has not started yet, and a
        # timer would fire at the quiescent point before the sender is
        # spawned.  Once traffic flows, a timeout detects the dry-up.
        msg = yield Recv(port=port)
        received.append(msg.payload)
        while True:
            msg = yield Recv(port=port, timeout=1_000_000_000)
            if msg is None:
                return  # the flood has dried up
            received.append(msg.payload)

    r = kernel.spawn(receiver, "rx")
    kernel.run()

    def sender(ctx):
        for i in range(n):
            yield Send(r.env["port"], {"i": i})

    kernel.spawn(sender, "tx")
    kernel.run()
    return kernel, received


def test_injected_drops_hit_the_drop_log_and_metrics():
    plan = FaultPlan.of(FaultRule(kind="drop", id="d", match="tx", p=0.3))
    kernel, received = _flood(plan, seed=0)
    dropped = kernel.faults.summary().get("drop", 0)
    assert 0 < dropped < 60
    assert len(received) == 60 - dropped
    assert kernel.drop_log.count(DROP_FAULT) == dropped
    snap = kernel.metrics.snapshot()
    assert snap.get("kernel.faults.drop") == dropped
    assert snap.get("kernel.faults.injected") == len(kernel.faults.events)


def test_kernel_runs_are_reproducible_end_to_end():
    """The full-system property: identical (plan, seed) reproduces the
    identical fault log *and* identical kernel books."""
    plan = FaultPlan.of(
        FaultRule(kind="drop", id="d", match="tx", p=0.2),
        FaultRule(kind="delay", id="lag", match="tx", p=0.2, rounds=2),
    )
    k1, r1 = _flood(plan, seed=11)
    k2, r2 = _flood(plan, seed=11)
    assert k1.faults.events_json() == k2.faults.events_json()
    assert r1 == r2
    assert k1.metrics.snapshot() == k2.metrics.snapshot()
    k3, _ = _flood(plan, seed=12)
    assert k1.faults.events_json() != k3.faults.events_json()


def test_delayed_messages_arrive_late_but_intact():
    plan = FaultPlan.of(FaultRule(kind="delay", id="lag", match="tx", p=1.0, rounds=3, max_fires=4))
    kernel, received = _flood(plan, seed=0, n=10)
    # Nothing is lost to a delay — order may shift, content must not.
    assert sorted(m["i"] for m in received) == list(range(10))
    assert kernel.faults.summary() == {"delay": 4}


def test_squeezed_queue_drops_as_queue_limit():
    # Receiver never drains, so a limit of 2 starts eating the flood at
    # the third queued message.
    plan = FaultPlan.of(FaultRule(kind="queue_limit", id="sq", match="tx", limit=2))
    kernel = Kernel(config=KernelConfig(metrics=True, faults=plan, fault_seed=0))

    def receiver(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        ctrl = yield NewPort()
        yield SetPortLabel(ctrl, Label.top())
        yield Recv(port=ctrl)  # park forever; the data queue backs up

    r = kernel.spawn(receiver, "rx")
    kernel.run()

    def sender(ctx):
        for i in range(8):
            yield Send(r.env["port"], {"i": i})

    kernel.spawn(sender, "tx")
    kernel.run()
    squeezes = kernel.faults.summary().get("queue_limit", 0)
    assert squeezes > 0
    assert kernel.drop_log.count(DROP_QUEUE_LIMIT) >= squeezes


def test_crash_at_exact_syscall():
    plan = FaultPlan.of(FaultRule(kind="crash", id="boom", match="victim", at_syscall=3))
    kernel = Kernel(config=KernelConfig(faults=plan, fault_seed=0))
    progress = []

    def victim(ctx):
        yield NewPort()       # syscall 1
        progress.append(1)
        yield NewPort()       # syscall 2
        progress.append(2)
        yield NewPort()       # syscall 3: never returns
        progress.append(3)

    kernel.spawn(victim, "victim")
    kernel.run()
    assert progress == [1, 2]
    assert [e.kind for e in kernel.faults.events] == ["crash"]


def test_spawn_fail_raises_resource_exhausted():
    plan = FaultPlan.of(FaultRule(kind="spawn_fail", id="no", match="child", p=1.0))
    kernel = Kernel(config=KernelConfig(faults=plan, fault_seed=0))
    outcomes = []

    def parent(ctx):
        def child(cctx):
            yield NewPort()

        try:
            yield Spawn(child, name="child")
        except ResourceExhausted:
            outcomes.append("denied")
        yield Spawn(child, name="other-name")  # rule does not match
        outcomes.append("spawned")

    kernel.spawn(parent, "parent")
    kernel.run()
    assert outcomes == ["denied", "spawned"]


def test_stalled_task_still_finishes():
    # p=1.0: every pick of "tx" stalls until the budget runs out, after
    # which the flood completes untouched — a stall delays, never drops.
    plan = FaultPlan.of(FaultRule(kind="stall", id="slow", match="tx", p=1.0, max_fires=3))
    kernel, received = _flood(plan, seed=0, n=12)
    assert [m["i"] for m in received] == list(range(12))
    assert kernel.faults.summary().get("stall", 0) == 3


def test_clock_noise_charges_background_cycles():
    plan = FaultPlan.of(
        FaultRule(kind="clock_noise", id="hum", p=1.0, cycles=5_000, max_fires=3)
    )
    kernel, received = _flood(plan, seed=0, n=4)
    assert len(received) == 4
    assert kernel.faults.summary() == {"clock_noise": 3}


def test_kill_ep_with_no_target_records_the_miss():
    """A scheduled EP kill with nothing to kill still lands in the log
    (campaigns reconcile every event; silent misses would break that)."""
    plan = FaultPlan.of(FaultRule(kind="kill_ep", id="reap", at_step=2))
    kernel, _ = _flood(plan, seed=0, n=4)
    events = [e for e in kernel.faults.events if e.kind == "kill_ep"]
    assert len(events) == 1
    assert events[0].target == "<no-dormant-ep>"
    assert events[0].detail == {"missed": True}
