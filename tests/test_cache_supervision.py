"""Production extensions the paper sketches: the shared worker cache
("Asbestos could without much trouble support a shared cache that
isolated users", §7.3) and launcher supervision ("a more mature version
of launcher could restart dead processes", §7.1)."""

import pytest

from repro.okws import ServiceConfig, launch
from repro.sim.workload import HttpClient


def writer_handler(ectx, request):
    yield from request.cache.put("profile", f"{request.user}'s data")
    return {"body": "stored"}


def reader_handler(ectx, request):
    value, hit = yield from request.cache.get("profile")
    public, public_hit = yield from request.cache.get("motd", owner=0)
    return {"body": {"mine": value, "hit": hit, "public": public}}


def publisher_handler(ectx, request):
    # A declassifier worker: may publish into the public namespace.
    yield from request.cache.put_public("motd", f"announcement by {request.user}")
    return {"body": "published"}


def imposter_publisher_handler(ectx, request):
    # A NON-declassifier worker trying the same put_public: its verify
    # label V(uT)=⋆ cannot bound its uT-3 send label, so the kernel drops
    # the request and the worker hangs (visible as a None response).
    yield from request.cache.put_public("motd", "defaced!")
    return {"body": "published?!"}


def snoop_handler(ectx, request):
    value, _ = yield from request.cache.get("profile", owner=1)  # alice's
    return {"body": {"stolen": value}}


def crashy_handler(ectx, request):
    if request.args.get("boom"):
        raise RuntimeError("exploited")
    request.session["n"] = request.session.get("n", 0) + 1
    return {"body": request.session["n"]}
    yield


@pytest.fixture()
def site():
    return launch(
        services=[
            ServiceConfig("w", writer_handler),
            ServiceConfig("r", reader_handler),
            ServiceConfig("snoop", snoop_handler),
            ServiceConfig("pub", publisher_handler, declassifier=True),
            ServiceConfig("fakepub", imposter_publisher_handler),
            ServiceConfig("crashy", crashy_handler),
        ],
        users=[("alice", "pw-a"), ("bob", "pw-b")],
    )


@pytest.fixture()
def client(site):
    return HttpClient(site)


# -- shared cache ------------------------------------------------------------------


def test_cache_shared_across_services_per_user(site, client):
    client.request("alice", "pw-a", "w")            # service w writes...
    r = client.request("alice", "pw-a", "r")        # ...service r reads
    assert r.body["mine"] == "alice's data"
    assert r.body["hit"] is True


def test_cache_isolates_users(site, client):
    client.request("alice", "pw-a", "w")
    r = client.request("bob", "pw-b", "r")
    assert r.body["hit"] is False                   # bob has no entry
    assert r.body["mine"] is None


def test_cache_snoop_gets_silence(site, client):
    client.request("alice", "pw-a", "w")
    before = site.kernel.drop_log.count("label-check")
    r = client.request("bob", "pw-b", "snoop")
    # The GET reply carried alice's taint; bob's worker EP could not
    # receive it — every retry's reply is dropped the same way, and the
    # client only learns "degraded", never the data (or why).
    assert r.payload["status"] == 503
    assert "stolen" not in str(r.payload.get("body"))
    assert site.kernel.drop_log.count("label-check") == before + 3  # 1 + 2 retries


def test_cache_survives_worker_restart(site, client):
    client.request("alice", "pw-a", "w")
    client.request("alice", "pw-a", "crashy", args={"boom": 1})   # kill a worker
    site.kernel.run()
    assert [r["service"] for r in site.launcher_env["restarts"]] == ["crashy"]
    assert site.launcher_env["restarts"][0]["crashed"] is True
    # The cache is a separate trusted process: alice's entry survived.
    r = client.request("alice", "pw-a", "r")
    assert r.body["mine"] == "alice's data"


def test_declassifier_publishes_public_entry(site, client):
    client.request("alice", "pw-a", "pub")
    r = client.request("bob", "pw-b", "r")
    assert r.body["public"] == "announcement by alice"


def test_non_declassifier_cannot_publish(site, client):
    before = site.kernel.drop_log.count("label-check")
    r = client.request("bob", "pw-b", "fakepub")
    # Every attempt's PUT is dropped at the send check; the worker
    # degrades to a 503 instead of wedging.
    assert r.payload["status"] == 503
    assert site.kernel.drop_log.count("label-check") == before + 3  # 1 + 2 retries
    # And nothing public appeared.
    r2 = client.request("alice", "pw-a", "r")
    assert r2.body["public"] is None


# -- supervision -----------------------------------------------------------------------


def test_worker_restart_restores_service(site, client):
    assert client.request("alice", "pw-a", "crashy").body == 1
    assert client.request("alice", "pw-a", "crashy").body == 2    # session
    r = client.request("alice", "pw-a", "crashy", args={"boom": 1})
    assert r.payload is None                        # the crash ate the request
    site.kernel.run()
    assert "crashy" in [r["service"] for r in site.launcher_env["restarts"]]
    # Service works again; sessions (worker-local EPs) started over.
    assert client.request("alice", "pw-a", "crashy").body == 1


def test_restart_mints_fresh_verification_handle(site, client):
    client.request("alice", "pw-a", "crashy", args={"boom": 1})
    site.kernel.run()
    # Two distinct worker-crashy processes existed over time; the demux
    # accepted the new one's REGISTER, which required the *new* handle.
    workers = [p for p in site.kernel.processes.values() if p.name == "worker-crashy"]
    assert len(workers) == 1                        # old one is gone
    assert client.request("bob", "pw-b", "crashy").body == 1


def test_other_workers_unaffected_by_restart(site, client):
    client.request("alice", "pw-a", "w")
    client.request("alice", "pw-a", "crashy", args={"boom": 1})
    site.kernel.run()
    assert client.request("alice", "pw-a", "r").body["hit"] is True
