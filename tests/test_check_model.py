"""asbcheck: the topology model, the engine, policies, counterexamples."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import cli
from repro.analysis import rules as R
from repro.analysis.check import Engine, link_lint_findings, run_check
from repro.analysis.model import LabelStore, Topology, load, loads, parse_level
from repro.core.labels import Label
from repro.core.levels import L0, L1, L2, L3, STAR
from repro.kernel.errors import (
    DROP_DECONT_PRIVILEGE,
    DROP_LABEL_CHECK,
    DROP_PORT_LABEL,
)
from repro.policies.assertions import (
    CapabilityConfinement,
    DeadEdges,
    Isolation,
    MandatoryDeclassifier,
    policies_from_json,
    policy_from_json,
    policy_to_json,
    watched_handles,
)

ROOT = Path(__file__).resolve().parents[1]
TOPOLOGIES = ROOT / "examples" / "topologies"


# -- the declarative model ---------------------------------------------------------


def test_parse_level():
    assert parse_level("*") == STAR
    assert parse_level(-1) == STAR
    assert parse_level(3) == L3
    assert parse_level("2") == L2
    with pytest.raises(ValueError):
        parse_level("7")


def test_topology_round_trips_through_json():
    topo = load(TOPOLOGIES / "leaky_site.json")
    again = loads(topo.dumps())
    assert again.name == topo.name
    assert set(again.processes) == set(topo.processes)
    assert set(again.ports) == set(topo.ports)
    assert [e.name for e in again.edges] == [e.name for e in topo.edges]
    assert again.policies == topo.policies
    for name, spec in topo.processes.items():
        assert again.processes[name].send == spec.send
        assert again.processes[name].receive == spec.receive
    for name, port in topo.ports.items():
        assert again.ports[name].label == port.label
        assert again.ports[name].handle == port.handle


def test_validate_catches_dangling_references():
    topo = Topology("broken")
    topo.add_process("a")
    topo.add_port("p", owner="ghost")
    topo.add_edge("nobody", "p")
    problems = topo.validate()
    assert any("ghost" in p for p in problems)
    assert any("nobody" in p for p in problems)
    with pytest.raises(ValueError):
        Engine(topo)


def test_policy_json_round_trip():
    battery = [
        Isolation(process="w*", handle="uT:u", max_level=L2),
        MandatoryDeclassifier(handle="uT:u", sink="s"),
        CapabilityConfinement(handle="admin", allowed=("launcher", "idd")),
        DeadEdges(edges=("a->b",)),
    ]
    assert policies_from_json([policy_to_json(p) for p in battery]) == battery
    with pytest.raises(ValueError):
        policy_from_json({"kind": "nonsense"})


def test_watched_handles_skips_unknown_names():
    topo = Topology("t")
    h = topo.handle("uT:u")
    policies = [
        Isolation(process="x", handle="uT:u"),
        Isolation(process="x", handle="no-such-handle"),
        DeadEdges(),
    ]
    assert watched_handles(policies, topo) == [h]
    # The unknown name must not have been minted as a side effect.
    assert "no-such-handle" not in topo.handles


def test_label_store_interns_and_memoizes():
    store = LabelStore()
    a = store.intern(Label({1: L3}, L1))
    b = store.intern(Label({1: L3}, L1))
    assert a == b
    first = store.lub(a, b)
    misses = store.memo_misses
    assert store.lub(a, b) == first
    assert store.memo_misses == misses  # second call served from the memo


# -- Figure 4 in the engine --------------------------------------------------------


def _two_proc(sender_send=None, receiver_receive=None, **edge_kw):
    topo = Topology("pair")
    topo.add_process(
        "a", send=sender_send or topo.label({"p": "*"}, default=1)
    )
    topo.add_process("b", receive=receiver_receive)
    topo.add_port("p", owner="b")
    topo.add_edge("a", "p", name="a->b", **edge_kw)
    return topo


def _fire_first(topo):
    engine = Engine(topo)
    return engine, engine.fire(engine.initial, engine.edges[0])


def test_contamination_effects_match_figure_4():
    topo = _two_proc(
        cs=Label({77: L3}, L0),
        receiver_receive=Label({77: L3}, L2),  # willing to take the taint
    )
    engine, firing = _fire_first(topo)
    assert firing.delivered
    qs = engine.store.label(firing.new_qs)
    # QS ← (QS ⊓ DS) ⊔ (ES ⊓ QS*): the CS entry lands at 3.
    assert qs(77) == L3
    assert qs.default == L1


def test_decontaminate_without_star_is_dropped_at_send():
    topo = _two_proc(ds=Label({77: L0}, L3))
    _, firing = _fire_first(topo)
    assert not firing.delivered
    assert firing.drop == DROP_DECONT_PRIVILEGE


def test_dr_above_port_label_is_dropped():
    topo = Topology("pair")
    h = topo.handle("g")
    topo.add_process("a", send=topo.label({"p": "*", "g": "*"}, default=1))
    topo.add_process("b")
    topo.add_port("p", owner="b", label=Label({topo.handle("p"): L0}, L2))
    topo.add_edge("a", "p", name="a->b", dr=Label({h: L3}, STAR))
    _, firing = _fire_first(topo)
    assert not firing.delivered
    assert firing.drop == DROP_PORT_LABEL


def test_taint_above_receive_label_is_dropped():
    topo = _two_proc(
        cs=Label({77: L3}, L0),
        receiver_receive=Label({}, L2),  # refuses 3 at handle 77
    )
    _, firing = _fire_first(topo)
    assert not firing.delivered
    assert firing.drop == DROP_LABEL_CHECK


def test_fork_port_delivery_leaves_owner_labels_frozen():
    topo = Topology("forky")
    topo.add_process("a", send=topo.label({"p": "*"}, default=1))
    topo.add_process("base", receive=Label({77: L3}, L2))
    topo.add_port("p", owner="base", fork=True)
    topo.add_edge("a", "p", name="a->base", cs=Label({77: L3}, L0))
    engine, firing = _fire_first(topo)
    assert firing.delivered
    assert firing.new_qs == engine.initial[2 * 1]  # base QS unchanged


# -- policies over the fixtures ----------------------------------------------------


@pytest.fixture(scope="module")
def leaky():
    return load(TOPOLOGIES / "leaky_site.json")


def test_leaky_site_violations(leaky):
    report = run_check(leaky)
    assert not report.ok
    by_kind = {r.policy.kind: r for r in report.results}
    assert not by_kind["isolation"].ok
    assert by_kind["capability-confinement"].ok
    assert not by_kind["mandatory-declassifier"].ok
    assert not by_kind["dead-edge"].ok
    # The shortest counterexample is the two-hop relay through the front.
    trace = by_kind["isolation"].violation.trace
    assert [s.edge for s in trace] == ["worker_u->front", "front->sink"]
    assert all(s.delivered for s in trace)
    assert "worker_u->locked" in by_kind["dead-edge"].violation.message


def test_clean_site_proves_out():
    report = run_check(load(TOPOLOGIES / "clean_site.json"))
    assert report.ok
    assert [r.policy.kind for r in report.results] == [
        "isolation",
        "capability-confinement",
        "mandatory-declassifier",
        "dead-edge",
    ]


def test_exact_exploration_agrees_with_reduction(leaky):
    reduced = run_check(leaky)
    exact = run_check(leaky, exact=True)
    for a, b in zip(reduced.results, exact.results):
        assert a.policy == b.policy
        assert a.ok == b.ok
    # Identical counterexample traces, not just identical verdicts.
    for a, b in zip(reduced.violations(), exact.violations()):
        assert [s.edge for s in a.violation.trace] == [
            s.edge for s in b.violation.trace
        ]


def test_unknown_policy_handle_is_a_loud_violation(leaky):
    report = run_check(
        leaky, policies=[Isolation(process="sink_v", handle="typo:handle")]
    )
    assert not report.ok
    assert "unknown handle" in report.results[0].violation.message


def test_report_json_shape(leaky):
    doc = run_check(leaky).to_json()
    assert doc["tool"] == "asbcheck"
    assert doc["ok"] is False
    assert doc["stats"]["states"] > 0
    violated = [p for p in doc["policies"] if not p["ok"]]
    assert len(violated) == 3
    trace = next(p for p in violated if p["kind"] == "isolation")["violation"]["trace"]
    assert trace[0]["sender"] == "worker_u"
    json.dumps(doc)  # fully serializable


def test_exploration_truncation_is_reported(leaky):
    report = run_check(leaky, max_states=1)
    assert report.truncated
    assert "truncated" in report.format()


# -- asblint ↔ asbcheck linking ----------------------------------------------------


def test_link_lint_findings_cites_edges(leaky):
    # Pretend an asblint finding fired inside the program that drives the
    # leaking edge: the linker matches EdgeSpec.via by qualname suffix.
    leaky.edges[1].via = "site.front.relay_body"
    diag = R.Diagnostic(
        path="x.py", line=1, col=1, rule=R.TAINT_CREEP,
        message="m", function="relay_body",
    )
    report = R.FileReport(path="x.py", diagnostics=[diag])
    linked = link_lint_findings([report], leaky)
    assert linked[0].diagnostics[0].related_edges == ("front->sink",)
    assert "feeds edge front->sink" in linked[0].diagnostics[0].format()
    assert linked[0].diagnostics[0].to_json()["related_edges"] == ["front->sink"]
    leaky.edges[1].via = ""


# -- the CLI -----------------------------------------------------------------------


def test_cli_check_exit_codes(capsys):
    leaky = str(TOPOLOGIES / "leaky_site.json")
    clean = str(TOPOLOGIES / "clean_site.json")
    assert cli.main(["check", "--topology", clean]) == 0
    assert cli.main(["check", "--topology", leaky]) == 1
    out = capsys.readouterr().out
    assert "counterexample" in out
    assert cli.main(["check"]) == 2  # neither --topology nor --okws
    assert cli.main(["check", "--topology", "/no/such/file.json"]) == 2


def test_cli_check_json_and_policy_override(tmp_path, capsys):
    leaky = str(TOPOLOGIES / "leaky_site.json")
    policy = tmp_path / "p.json"
    policy.write_text(json.dumps([{"kind": "dead-edge", "edges": ["worker_u->front"]}]))
    assert cli.main(["check", "--topology", leaky, "--policy", str(policy)]) == 0
    capsys.readouterr()  # drain the text report
    assert cli.main(["check", "--topology", leaky, "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "asbcheck"


def test_cli_check_dump_topology(tmp_path):
    leaky = str(TOPOLOGIES / "leaky_site.json")
    out = tmp_path / "dump.json"
    assert cli.main(["check", "--topology", leaky, "--dump-topology", str(out)]) == 1
    assert loads(out.read_text()).name == "leaky-site"
