"""LabeledStore: the durable write path and the recovery protocol."""

from __future__ import annotations

import os

import pytest

from repro.db import sql as S
from repro.store import wal
from repro.store.store import (
    LabeledStore,
    StoreCrash,
    image_digest,
    policy_problem,
    replay_image,
)
from repro.store.wal import RowTaint


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "wal.log")


def _fresh(path, **kw):
    store = LabeledStore(path, **kw)
    store.apply(S.parse("CREATE TABLE t (a INTEGER, b TEXT)"))
    return store


def test_apply_then_reopen_recovers_committed_rows(path):
    store = _fresh(path)
    store.apply(S.parse("INSERT INTO t (a, b) VALUES (?, ?)"), (1, "x"))
    store.apply(
        S.parse("INSERT INTO t (a, b) VALUES (?, ?)"),
        (2, "y"),
        owner=7,
        taint=RowTaint(handles=(99,), level=3),
    )
    store.close()

    again = LabeledStore(path)
    assert again.report.committed_txs == 3
    assert again.report.discarded_txs == 0
    assert not again.report.violations
    assert sorted((r["a"], r["b"]) for r in again.db.tables["t"].rows) == [
        (1, "x"),
        (2, "y"),
    ]
    # The private owner's taint metadata survives recovery.
    assert again.taints[7] == RowTaint(handles=(99,), level=3)
    again.close()


def test_uncommitted_transaction_is_discarded(path):
    store = _fresh(path)
    store.apply(S.parse("INSERT INTO t (a, b) VALUES (?, ?)"), (1, "x"))
    store.close()
    # Hand-append a begin+write with no commit: the crash window.
    with open(path, "ab") as fh:
        fh.write(wal.frame(wal.begin_record(99)))
        fh.write(
            wal.frame(
                wal.write_record(
                    99, S.parse("INSERT INTO t (a, b) VALUES (?, ?)"), (2, "y"), 0, None, False
                )
            )
        )

    again = LabeledStore(path)
    assert again.report.discarded_txs == 1
    assert [r["a"] for r in again.db.tables["t"].rows] == [1]
    # The replacement's transaction counter moves past the dead tx.
    assert again._next_tx == 100
    again.close()


def test_torn_tail_is_truncated_and_appends_continue(path):
    store = _fresh(path)
    store.apply(S.parse("INSERT INTO t (a, b) VALUES (?, ?)"), (1, "x"))
    store.close()
    clean = open(path, "rb").read()
    with open(path, "ab") as fh:
        fh.write(wal.frame(wal.begin_record(3))[:5])  # torn mid-header

    again = LabeledStore(path)
    assert again.report.torn_bytes == 5
    assert os.path.getsize(path) == len(clean)
    again.apply(S.parse("INSERT INTO t (a, b) VALUES (?, ?)"), (2, "y"))
    again.close()
    assert not wal.scan_file(path).torn


def test_strict_recovery_skips_policy_violating_writes(path):
    """A tainted write claiming public ownership without declassification
    is repaired away and recorded, not resurrected."""
    store = _fresh(path)
    store.close()
    with open(path, "ab") as fh:
        fh.write(wal.frame(wal.begin_record(5)))
        fh.write(
            wal.frame(
                wal.write_record(
                    5,
                    S.parse("INSERT INTO t (a, b) VALUES (?, ?)"),
                    (9, "leak"),
                    0,  # public owner...
                    RowTaint(handles=(4,), level=3),  # ...but carrying taint
                    False,  # and no declassification proof
                )
            )
        )
        fh.write(wal.frame(wal.commit_record(5)))

    strict = LabeledStore(path)
    assert len(strict.report.violations) == 1
    assert strict.report.violations[0].table == "t"
    assert strict.db.tables["t"].rows == []
    strict.close()

    naive = replay_image(open(path, "rb").read(), label_check=False)
    assert [r["a"] for r in naive.db.tables["t"].rows] == [9]


@pytest.mark.parametrize(
    "owner,taint,declass,bad",
    [
        (0, None, False, False),                      # admin write
        (0, {"handles": [1], "level": 3}, True, False),   # declassified
        (7, {"handles": [1], "level": 3}, False, False),  # private
        (0, {"handles": [1], "level": 3}, False, True),   # taint-to-public
        (7, {"handles": [1], "level": 3}, True, True),    # declass, private owner
        (0, None, True, True),                        # declass, no compartment
        (7, None, False, True),                       # private, taint lost
    ],
)
def test_policy_problem_rules(owner, taint, declass, bad):
    payload = {"owner": owner, "taint": taint, "declass": declass}
    assert (policy_problem(payload) is not None) == bad


def test_checkpoint_reopens_from_snapshot(path):
    store = _fresh(path)
    store.apply(
        S.parse("INSERT INTO t (a, b) VALUES (?, ?)"),
        (1, "x"),
        owner=3,
        taint=RowTaint(handles=(8,), level=3),
    )
    store.checkpoint()
    store.apply(S.parse("INSERT INTO t (a, b) VALUES (?, ?)"), (2, "y"))
    store.close()

    again = LabeledStore(path)
    assert again.report.checkpoints_used == 1
    assert sorted(r["a"] for r in again.db.tables["t"].rows) == [1, 2]
    assert again.taints[3] == RowTaint(handles=(8,), level=3)
    again.close()


def test_rejected_statement_leaves_no_trace_in_the_log(path):
    store = _fresh(path)
    before = os.path.getsize(path)
    with pytest.raises(S.SqlError):
        store.apply(S.parse("INSERT INTO nope (a) VALUES (?)"), (1,))
    assert os.path.getsize(path) == before
    store.close()


def test_bulk_insert_is_one_transaction_with_per_row_owners(path):
    store = LabeledStore(path)
    store.apply(S.parse("CREATE TABLE users (uid INTEGER, _user_id INTEGER)"))
    store.bulk_insert(
        "users", [{"uid": 1, "_user_id": 1}, {"uid": 2, "_user_id": None}]
    )
    store.close()
    records = wal.scan_file(path).records
    writes = [r for r in records if r.type == "write" and r.payload["stmt"]["op"] == "insert"]
    assert [w.payload["owner"] for w in writes] == [1, 0]
    assert len({w.tx for w in writes}) == 1


def test_injected_crash_freezes_the_image(path):
    fire = {"arm": False}

    def hook(nbytes):
        return 3 if fire["arm"] else None

    store = _fresh(path, io_hook=hook)
    clean = open(path, "rb").read()
    fire["arm"] = True
    with pytest.raises(StoreCrash):
        store.apply(S.parse("INSERT INTO t (a, b) VALUES (?, ?)"), (1, "x"))
    crash = open(path + ".crash", "rb").read()
    assert crash == clean + wal.frame(wal.begin_record(2))[:3]
    assert image_digest(crash) == image_digest(open(path, "rb").read())
    # Recovery of the crashed image finds only the schema transaction.
    state = replay_image(crash)
    assert state.report.committed_txs == 1
    assert state.report.torn_bytes == 3


def test_metrics_counters(path):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry(enabled=True)
    store = _fresh(path, metrics=registry.scope("kernel.store"))
    store.apply(S.parse("INSERT INTO t (a, b) VALUES (?, ?)"), (1, "x"))
    store.close()
    snap = registry.snapshot()
    assert snap["kernel.store.appends"] == 6  # 2 tx x (begin+write+commit)
    assert snap["kernel.store.commits"] == 2
    assert snap["kernel.store.bytes"] > 0
    assert "kernel.store.recoveries" not in snap  # fresh file, no recovery

    registry2 = MetricsRegistry(enabled=True)
    LabeledStore(path, metrics=registry2.scope("kernel.store")).close()
    snap2 = registry2.snapshot()
    assert snap2["kernel.store.recoveries"] == 1
    assert snap2["kernel.store.recovered_txs"] == 2


def test_compute_hook_bills_cycles(path):
    billed = []
    store = LabeledStore(path, compute=billed.append)
    store.apply(S.parse("CREATE TABLE t (a INTEGER)"))
    store.close()
    assert len(billed) == 3
    assert all(c > 12_000 for c in billed)
