"""The asblint static pass: rule fixtures, pragmas, reports, tree hygiene."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import asblint, cli
from repro.analysis import rules as R
from repro.analysis.intervals import (
    AbstractLabel,
    AbstractState,
    IV_STAR,
    Interval,
    check_send_interval,
    exact,
)
from repro.core.levels import L1, L3, STAR

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "fixtures" / "asblint"


def finding_lines(path: Path):
    return [
        lineno
        for lineno, text in enumerate(path.read_text().splitlines(), start=1)
        if "# FINDING" in text
    ]


# -- the four rule fixtures, flagged at the right file:line --------------------------


@pytest.mark.parametrize(
    "name,rule",
    [
        ("bad_never_pass.py", R.NEVER_PASS),
        ("bad_taint_creep.py", R.TAINT_CREEP),
        ("bad_declassify.py", R.DECLASSIFY_NO_STAR),
        ("bad_handle_leak.py", R.HANDLE_LEAK),
    ],
)
def test_bad_fixture_flagged_at_correct_line(name, rule):
    path = FIXTURES / name
    report = asblint.analyze_file(path)
    assert [d.rule for d in report.diagnostics] == [rule], report.diagnostics
    (marker,) = finding_lines(path)
    diag = report.diagnostics[0]
    assert diag.line == marker
    assert diag.path == str(path)
    assert diag.format().startswith(f"{path}:{marker}:")
    assert diag.rule_name == R.RULES_BY_ID[rule].name


def test_clean_worker_has_zero_findings():
    report = asblint.analyze_file(FIXTURES / "clean_worker.py")
    assert report.diagnostics == []
    assert report.suppressed == []
    # Both the process body and the event-body style handler were seen.
    assert "worker_body" in report.programs
    assert "conn_handler" in report.programs


def test_shipped_tree_is_clean():
    reports = asblint.analyze_paths([ROOT / "src" / "repro" / "servers", ROOT / "examples"])
    assert asblint.findings(reports) == []


# -- pragmas -----------------------------------------------------------------------


def tainted_send(pragma: str = "", comment_above: str = "") -> str:
    """A tiny program whose final Send provably taint-creeps (ASB002)."""
    lines = [
        "def tainted(ctx):",
        '    h = ctx.env["h"]',
        "    yield ChangeLabel(send=Label({h: L3}, L1))",
    ]
    if comment_above:
        lines.append("    " + comment_above)
    lines.append('    yield Send(ctx.env["peer"], {"x": 1})' + pragma)
    return "\n".join(lines) + "\n"


def test_pragma_suppresses_on_same_line():
    src = tainted_send(pragma="  # asblint: ignore[taint-creep]")
    report = asblint.analyze_source(src, "<mem>")
    assert report.diagnostics == []
    assert [d.rule for d in report.suppressed] == [R.TAINT_CREEP]
    assert report.unused_pragmas == []


def test_pragma_on_comment_line_above():
    src = tainted_send(comment_above="# asblint: ignore[ASB002]")
    report = asblint.analyze_source(src, "<mem>")
    assert report.diagnostics == []
    assert [d.rule for d in report.suppressed] == [R.TAINT_CREEP]


def test_bare_pragma_suppresses_all_rules():
    src = tainted_send(pragma="  # asblint: ignore")
    report = asblint.analyze_source(src, "<mem>")
    assert report.diagnostics == []
    assert len(report.suppressed) == 1


def test_wrong_rule_pragma_does_not_suppress_and_is_stale():
    src = tainted_send(pragma="  # asblint: ignore[ASB004]")
    report = asblint.analyze_source(src, "<mem>")
    assert [d.rule for d in report.diagnostics] == [R.TAINT_CREEP]
    assert report.suppressed == []
    assert [line for line, _ in report.unused_pragmas] == [4]


def test_pragma_inside_string_is_not_a_pragma():
    src = tainted_send() + '\nDOC = "# asblint: ignore[ASB002]"\n'
    report = asblint.analyze_source(src, "<mem>")
    assert [d.rule for d in report.diagnostics] == [R.TAINT_CREEP]
    assert report.unused_pragmas == []


# -- reports -----------------------------------------------------------------------


def test_json_report_shape():
    reports = asblint.analyze_paths([FIXTURES / "bad_never_pass.py"])
    payload = json.loads(asblint.render_json(reports))
    assert payload["version"] == 1
    assert {rule["id"] for rule in payload["rules"]} == {
        "ASB001",
        "ASB002",
        "ASB003",
        "ASB004",
    }
    (entry,) = payload["files"]
    (diag,) = entry["diagnostics"]
    assert diag["rule"] == R.NEVER_PASS
    assert diag["rule_name"] == "never-pass"
    assert diag["line"] == finding_lines(FIXTURES / "bad_never_pass.py")[0]
    assert payload["total_findings"] == 1


def test_syntax_error_becomes_parse_diagnostic():
    report = asblint.analyze_source("def broken(:\n", "<mem>")
    assert [d.rule for d in report.diagnostics] == [asblint.PARSE_ERROR]


def test_select_filters_rules():
    report = asblint.analyze_file(FIXTURES / "bad_taint_creep.py", select={R.NEVER_PASS})
    assert report.diagnostics == []


# -- the CLI ------------------------------------------------------------------------


def test_cli_analyze_exit_codes(capsys):
    assert cli.main(["analyze", str(FIXTURES / "clean_worker.py")]) == 0
    assert cli.main(["analyze", str(FIXTURES / "bad_handle_leak.py")]) == 1
    out = capsys.readouterr().out
    assert "ASB004" in out
    assert "handle-leak" in out


def test_cli_analyze_json(capsys):
    assert cli.main(["analyze", "--json", str(FIXTURES / "bad_declassify.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_findings"] == 1


# -- the interval domain ------------------------------------------------------------


def test_interval_check_never_pass_vs_maybe():
    es = AbstractLabel({"h": exact(L3)}, exact(L1))
    verdict = check_send_interval(
        es,
        AbstractLabel.unknown(),
        AbstractLabel.bottom(),
        AbstractLabel({"h": exact(0)}, exact(L3)),
        AbstractLabel.unknown(),
    )
    assert verdict.never_passes
    assert verdict.witness == "h"
    # Widen ES at h to [*, 3]: now it *may* pass, so the verdict is silent.
    maybe = check_send_interval(
        AbstractLabel({"h": Interval(STAR, L3)}, exact(L1)),
        AbstractLabel.unknown(),
        AbstractLabel.bottom(),
        AbstractLabel({"h": exact(0)}, exact(L3)),
        AbstractLabel.unknown(),
    )
    assert not maybe.never_passes


def test_receive_widening_preserves_star_privileges():
    state = AbstractState.fresh_process()
    state.ps = state.ps.with_entry("port", IV_STAR)
    widened = state.after_receive()
    # ⋆ is a fixed point of the send effect: the privilege survives.
    assert widened.ps.definitely_star("port")
    # ...but unrelated handles are no longer provably taint-free.
    assert not widened.ps.definitely_not_star("other")
    assert state.may_hold_star("port")
    assert not state.may_hold_star("other")


# -- ASB000: unknown rules in pragmas -----------------------------------------------


def test_unknown_rule_in_pragma_is_reported_not_silent():
    src = tainted_send(pragma="  # asblint: ignore[taint-kreep]")
    report = asblint.analyze_source(src, "<mem>")
    rules = [d.rule for d in report.diagnostics]
    # The typo'd pragma suppresses nothing, so the real finding survives,
    # and the typo itself is called out as ASB000 at the pragma's line.
    assert R.TAINT_CREEP in rules
    assert R.TOOLING in rules
    asb000 = next(d for d in report.diagnostics if d.rule == R.TOOLING)
    assert "taint-kreep" in asb000.message
    assert asb000.line == 4
    assert asb000.rule_name == "tooling"
    # No stale-pragma double report for the same typo.
    assert report.unused_pragmas == []


def test_mixed_known_and_unknown_pragma_keys():
    src = tainted_send(pragma="  # asblint: ignore[taint-creep, ASB99]")
    report = asblint.analyze_source(src, "<mem>")
    # The known key still works...
    assert [d.rule for d in report.suppressed] == [R.TAINT_CREEP]
    # ...and the unknown one is still reported.
    assert [d.rule for d in report.diagnostics] == [R.TOOLING]
    assert report.unused_pragmas == []


def test_tooling_rule_resolves_but_is_not_in_catalogue():
    assert R.resolve_rule("ASB000") is R.TOOLING_RULE
    assert R.resolve_rule("tooling") is R.TOOLING_RULE
    assert R.TOOLING_RULE not in R.RULES
