"""Differential verification: every label decision the production kernel
makes during a full OKWS workload is re-checked against the naive
Figure 4 reference semantics (plain Label lattice operations).

This catches any divergence between the fused/sparse fast paths the
kernel executes and the paper's definitional rules, under exactly the
label shapes a real workload produces (huge starry labels, port labels,
verification labels, decontamination grants...).
"""

import pytest

from repro.core import labelops
from repro.kernel.kernel import Kernel
from repro.okws import ServiceConfig, launch
from repro.okws.services import (
    notes_handler,
    profile_declassifier_handler,
    profile_handler,
    session_cache_handler,
)
from repro.sim.workload import HttpClient


class CheckingKernel(Kernel):
    """Re-validates every delivery against the reference semantics."""

    checked = 0

    def _try_deliver(self, task, entry, qmsg):
        es = qmsg.effective_send.to_label()
        qr = task.receive_label.to_label()
        qs = task.send_label.to_label()
        dr = qmsg.decontaminate_receive.to_label()
        ds = qmsg.decontaminate_send.to_label()
        v = qmsg.verify.to_label()
        pr = entry.label.to_label()

        expect_ok = labelops.check_send_reference(es, qr, dr, v, pr) and dr <= pr
        delivered = super()._try_deliver(task, entry, qmsg)
        assert delivered == expect_ok, (
            f"delivery decision diverged for {qmsg.sender_name} -> {task.name}"
        )
        if delivered:
            want_qs = labelops.apply_send_effects_reference(qs, es, ds)
            want_qr = qr | dr
            assert task.send_label.to_label() == want_qs, (
                f"send-label effect diverged at {task.name}"
            )
            assert task.receive_label.to_label() == want_qr, (
                f"receive-label effect diverged at {task.name}"
            )
        CheckingKernel.checked += 1
        return delivered


@pytest.mark.parametrize("network", ["classic", "decomposed"])
def test_full_okws_workload_matches_reference_semantics(network):
    CheckingKernel.checked = 0
    site = launch(
        kernel=CheckingKernel(),
        services=[
            ServiceConfig("cache", session_cache_handler),
            ServiceConfig("notes", notes_handler),
            ServiceConfig("profile", profile_handler),
            ServiceConfig("publish", profile_declassifier_handler, declassifier=True),
        ],
        users=[("alice", "pw-a"), ("bob", "pw-b"), ("carol", "pw-c")],
        schema=[
            "CREATE TABLE notes (author TEXT, text TEXT)",
            "CREATE TABLE profiles (owner TEXT, bio TEXT)",
        ],
        network=network,
    )
    client = HttpClient(site)
    for user, pw in (("alice", "pw-a"), ("bob", "pw-b"), ("carol", "pw-c")):
        client.request(user, pw, "cache", body=f"{user}-state".encode())
        client.request(user, pw, "notes", body=f"{user}-note", args={"op": "add"})
        client.request(user, pw, "notes", args={"op": "list"})
        client.request(user, pw, "profile", body=f"{user}-bio", args={"op": "set"})
    client.request("alice", "pw-a", "publish")
    client.request("bob", "pw-b", "profile", args={"op": "get"})
    client.request("alice", "pw-a", "cache", body=b"second-visit")
    # Every delivery in the entire run was double-checked.
    assert CheckingKernel.checked > 300
