"""Cross-shard differential suite: shard count must not change semantics.

The same OKWS workload runs at ``n_shards=1`` (the in-process identity
path) and at 2 and 4 shards (real OS worker processes, cross-shard
courier traffic over ``wire/v1``).  Everything a user of the system can
observe must be invariant: per-session outcomes in request order, the
set of board-delivered digests, and the drop accounting — the doomed
``V = {0}`` couriers are rejected by Figure 4 requirement (1) *wherever*
the destination board lives, so ``label-check`` totals match even
though at 2+ shards some of those checks run on a different OS process
against re-interned labels.

The per-shard sampled sanitizer (1/16 here) rides along and must stay
silent: re-interned cross-shard labels go through the same differential
cross-check as home-grown ones.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.kernel.config import KernelConfig

USERS = tuple((f"user{i}", f"pw{i}") for i in range(8))
REQUESTS = [
    (f"user{i % len(USERS)}", f"pw{i % len(USERS)}", "echo", None, {"length": 7})
    for i in range(24)
]


def _run(n_shards):
    config = ClusterConfig(
        n_shards=n_shards,
        users=USERS,
        kernel=KernelConfig(sanitize=True, intern_labels=True),
        sanitize_sample=16,
    )
    with Cluster(config) as cluster:
        cluster.mark()
        result = cluster.run_batch(REQUESTS)
        routed = cluster.run_courier()
        report = cluster.report()
    return {
        "outcomes": [(user, status, body) for user, status, body, _ in result.outcomes],
        "board": sorted(
            (p["user"], p["seq"]) for p in report["board_log"]
        ),
        "drops": report["drops"],
        "violations": report["sanitizer_violations"],
        "routed": routed,
        "busy": result.busy_cycles,
    }


@pytest.fixture(scope="module")
def baseline():
    return _run(1)


@pytest.mark.parametrize("n_shards", [2, 4])
def test_sharded_run_matches_single_shard(baseline, n_shards):
    sharded = _run(n_shards)
    assert sharded["outcomes"] == baseline["outcomes"]
    assert sharded["board"] == baseline["board"]
    assert sharded["drops"] == baseline["drops"]
    assert sharded["violations"] == 0 and baseline["violations"] == 0
    # Real cross-shard traffic happened (the courier ring guarantees it
    # whenever two shards both own users) and the wire was exercised.
    assert sharded["routed"] > 0
    assert baseline["routed"] == 0


def test_sharding_reduces_the_critical_path():
    single, double = _run(1), _run(2)
    # Cluster time is the slowest shard's simulated busy time; splitting
    # the users must beat the single kernel (superlinear per-connection
    # label costs make this comfortably true even with CRC imbalance).
    assert max(double["busy"]) < max(single["busy"])


def test_doomed_couriers_drop_on_the_receiving_shard():
    report = _run(2)
    # len(USERS)//2 doomed messages were sent; every one must be dropped
    # by the delivery-side label check, never delivered to a board.
    assert report["drops"].get("label-check", 0) == len(USERS) // 2
    # Exactly one digest per user reached a board — had any doomed
    # variant been delivered, its (user, seq) would duplicate an entry.
    assert len(report["board"]) == len(USERS)
    assert len(set(report["board"])) == len(USERS)
