"""Differential conformance suite for proof-guided check elision.

The verified-flow table (:mod:`repro.kernel.elide`) lets the kernel skip
the Figure 4 delivery checks entirely when asbcheck proved the exact
(port, label-values) instance always-allowed and precomputed its effect
cores (:mod:`repro.analysis.proofs`).  Skipping an IFC check is the most
dangerous optimisation in this codebase, so this suite proves the full
pipeline — record a live topology, compile proofs, reload them into a
fresh kernel — against the unelided kernel three ways:

1. Hypothesis-generated workloads: random session counts, payload sizes,
   concurrency and warm-up depth, each recorded/compiled/replayed, with
   the elided replay required to be *bit-identical* to the plain one
   (responses, drop log, every surviving task's labels);
2. a deterministic replay asserting the OpStats reconciliation invariant
   — every label operation the elided kernel skipped is accounted for by
   either a labelop-cache hit or a verified-flow stub hit, no more, no
   less — plus metric/`kernel_snapshot` exposure;
3. sanitizer-strict replays (the sampled sanitizer re-derives elided
   decisions from the naive reference semantics) that must stay clean
   while the stub path is demonstrably exercised.
"""

import json
import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.analysis.extract import TopologyRecorder
from repro.analysis.proofs import compile_proofs, write_proofs
from repro.kernel.config import KernelConfig
from repro.obs.metrics import kernel_snapshot
from repro.sim.runner import build_echo_site
from repro.sim.workload import HttpClient


def _requests(n_users, length):
    return [
        (f"u{i}", f"pw{i}", "echo", None, {"length": length}) for i in range(n_users)
    ]


def _compile_site_proofs(n_users, requests, concurrency, warm_rounds, path):
    """Warm an echo site, record one round, compile and write proofs."""
    site = build_echo_site(n_users, config=KernelConfig())
    client = HttpClient(site)
    for _ in range(warm_rounds):
        client.run_batch(requests, concurrency=concurrency)
    recorder = TopologyRecorder(site.kernel)
    client.run_batch(requests, concurrency=concurrency)
    topology = recorder.build(f"conformance-{n_users}")
    assert topology.validate() == []
    doc = compile_proofs(topology)
    write_proofs(doc, path)
    return doc


def _replay(n_users, requests, concurrency, rounds, config):
    """A fresh site through *rounds* identical batches; returns the
    kernel and the flattened response payloads."""
    site = build_echo_site(n_users, config=config)
    client = HttpClient(site)
    payloads = []
    for _ in range(rounds):
        payloads.extend(
            r.payload for r in client.run_batch(requests, concurrency=concurrency)
        )
    return site.kernel, payloads


def _assert_bit_identical(plain_kernel, plain_payloads, elided_kernel, elided_payloads):
    assert plain_payloads == elided_payloads
    assert plain_kernel.drop_log.records == elided_kernel.drop_log.records
    assert set(plain_kernel.tasks) == set(elided_kernel.tasks)
    for key, task in plain_kernel.tasks.items():
        other = elided_kernel.tasks[key]
        assert task.send_label.to_label() == other.send_label.to_label(), key
        assert task.receive_label.to_label() == other.receive_label.to_label(), key
    assert set(plain_kernel.ports) == set(elided_kernel.ports)
    for handle, entry in plain_kernel.ports.items():
        assert (
            entry.label.to_label() == elided_kernel.ports[handle].label.to_label()
        ), handle


def _elide_config(path, **extra):
    return KernelConfig(
        intern_labels=True,
        elide_checks=True,
        proof_path=path,
        labelop_cache_size=1 << 12,
        **extra,
    )


# -- 1. Hypothesis-randomized topologies through the full pipeline ------------------


@given(
    n_users=st.integers(min_value=2, max_value=6),
    length=st.integers(min_value=1, max_value=60),
    concurrency=st.integers(min_value=1, max_value=8),
    warm_rounds=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=6, deadline=None)
def test_random_workload_elided_replay_is_bit_identical(
    n_users, length, concurrency, warm_rounds
):
    requests = _requests(n_users, length)
    rounds = warm_rounds + 2
    with tempfile.TemporaryDirectory(prefix="repro-elide-conf-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        doc = _compile_site_proofs(n_users, requests, concurrency, warm_rounds, path)
        assert doc["stats"]["proven_edges"] == doc["stats"]["edges"]
        plain_kernel, plain_payloads = _replay(
            n_users, requests, concurrency, rounds, KernelConfig()
        )
        elided_kernel, elided_payloads = _replay(
            n_users, requests, concurrency, rounds, _elide_config(path)
        )
    _assert_bit_identical(plain_kernel, plain_payloads, elided_kernel, elided_payloads)
    table = elided_kernel.flow_table
    assert table is not None
    # The proofs were compiled for this exact world: no invalidating
    # event may fire, and at least the send-stub path must be exercised.
    assert table.valid, table.invalidation_reasons
    assert table.quarantines == 0
    assert table.deliver_hits + table.send_hits > 0


# -- 2. OpStats reconciliation: every skipped op is a hit somewhere -----------------


def test_elided_ops_reconcile_with_stub_and_cache_hits():
    n_users, concurrency = 12, 8
    requests = _requests(n_users, 11)
    with tempfile.TemporaryDirectory(prefix="repro-elide-conf-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        _compile_site_proofs(n_users, requests, concurrency, 2, path)
        plain_kernel, plain_payloads = _replay(
            n_users, requests, concurrency, 4, KernelConfig()
        )
        elided_kernel, elided_payloads = _replay(
            n_users, requests, concurrency, 4, _elide_config(path)
        )
    _assert_bit_identical(plain_kernel, plain_payloads, elided_kernel, elided_payloads)
    table = elided_kernel.flow_table
    cache = elided_kernel.labelop_cache
    assert table.deliver_hits > 0 and table.send_hits > 0
    # The reconciliation ledger: each deliver-stub hit elided 4 label
    # operations (req-4 leq, check, effects, raise), each send-stub hit
    # elided the ES join, each cache hit elided one op — and nothing
    # else may touch the operation count.
    assert (
        plain_kernel.label_stats.operations
        == elided_kernel.label_stats.operations + cache.hits + table.ops_elided
    )
    assert table.ops_elided == 4 * table.deliver_hits + table.send_hits


def test_elide_counters_surface_in_kernel_snapshot():
    n_users = 4
    requests = _requests(n_users, 11)
    with tempfile.TemporaryDirectory(prefix="repro-elide-conf-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        _compile_site_proofs(n_users, requests, 4, 1, path)
        elided_kernel, _ = _replay(
            n_users, requests, 4, 3, _elide_config(path, metrics=True)
        )
        plain_kernel, _ = _replay(n_users, requests, 4, 1, KernelConfig())
    snap = kernel_snapshot(elided_kernel)
    table = elided_kernel.flow_table
    assert snap["elide"] == table.counters()
    assert snap["config"]["elide_checks"] is True
    assert snap["config"]["proof_path"] == path
    assert kernel_snapshot(plain_kernel)["elide"] is None
    # The kernel.elide.* metric subtree mirrors the table's counters.
    metrics = snap["metrics"]
    assert metrics["kernel.elide.deliver_stub_hits"] == table.deliver_hits
    assert metrics["kernel.elide.send_stub_hits"] == table.send_hits
    assert metrics["kernel.elide.invalidations"] == table.invalidations
    assert metrics["kernel.elide.batch_drains"] == table.batch_drains
    assert metrics["kernel.elide.batched_messages"] == table.batched_messages


def test_first_use_of_every_stub_key_is_sanitizer_replayed():
    n_users = 6
    requests = _requests(n_users, 11)
    with tempfile.TemporaryDirectory(prefix="repro-elide-conf-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        _compile_site_proofs(n_users, requests, 4, 2, path)
        elided_kernel, _ = _replay(n_users, requests, 4, 4, _elide_config(path))
    table = elided_kernel.flow_table
    assert table.deliver_hits > table.first_use_checks > 0
    assert table.first_use_checks == len(table._seen_keys)


# -- 3. sanitizer-strict replays stay clean -----------------------------------------


def test_elided_replay_is_sanitizer_strict_clean():
    n_users = 8
    requests = _requests(n_users, 11)
    with tempfile.TemporaryDirectory(prefix="repro-elide-conf-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        _compile_site_proofs(n_users, requests, 8, 2, path)
        config = _elide_config(path, sanitize=True, sanitize_strict=True)
        elided_kernel, _ = _replay(n_users, requests, 8, 4, config)
    table = elided_kernel.flow_table
    assert elided_kernel.sanitizer is not None
    assert elided_kernel.sanitizer.violations == []
    assert table.deliver_hits > 0
    assert table.quarantines == 0


# -- 4. the environment wiring ------------------------------------------------------


def test_repro_elide_env_vars_configure_the_kernel():
    config = KernelConfig.from_env(
        {"REPRO_ELIDE": "1", "REPRO_PROOFS": "/tmp/p.json"}
    )
    assert config.elide_checks is True
    assert config.proof_path == "/tmp/p.json"
    off = KernelConfig.from_env({})
    assert off.elide_checks is False
    assert off.proof_path is None


def test_elide_without_proofs_boots_and_never_hits():
    kernel, payloads = _replay(
        3,
        _requests(3, 11),
        2,
        1,
        KernelConfig(intern_labels=True, elide_checks=True),
    )
    assert kernel.flow_table is None
    assert len(payloads) == 3


def test_proofs_document_round_trips_through_json():
    n_users = 3
    requests = _requests(n_users, 11)
    with tempfile.TemporaryDirectory(prefix="repro-elide-conf-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        doc = _compile_site_proofs(n_users, requests, 2, 1, path)
        with open(path) as fh:
            reread = json.load(fh)
    assert reread["schema"] == "proofs/v1"
    assert reread["stats"] == doc["stats"]
    assert reread["topology"]["fingerprint"] == doc["topology"]["fingerprint"]
    assert len(reread["delivers"]) == doc["stats"]["deliver_stubs"]
    assert len(reread["sends"]) == doc["stats"]["send_stubs"]
