"""asbcheck over the shipped OKWS topology, extracted from a live run.

The topology verified here is whatever the launcher actually wired — it
comes out of kernel hooks, not a hand-written document — so these tests
are the CI gate the issue asks for: the paper's Section 7 security
argument, checked against the deployed wiring on every commit.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.check import run_check
from repro.analysis.model import loads
from repro.okws.topology import TRUSTED, record_okws_topology


@pytest.fixture(scope="module")
def okws_topology():
    return record_okws_topology()


def test_extraction_names_the_paper_vocabulary(okws_topology):
    topo = okws_topology
    for name in ("netd", "ok-demux", "idd", "launcher", "ok-dbproxy"):
        assert name in topo.processes, name
    # Event processes are per-user: worker-notes.alice etc.
    eps = [n for n in topo.processes if n.startswith("worker-notes.")]
    assert {"worker-notes.alice", "worker-notes.bob"} <= set(eps)
    for handle_name in ("uT:alice", "uT:bob", "uG:alice", "admin",
                        "verify:notes", "netd_wire_port", "idd_port"):
        assert handle_name in topo.handles, handle_name
    assert "<wire>" in topo.processes  # injected HTTP traffic
    assert topo.edges and topo.ports


def test_okws_battery_is_clean_and_fast(okws_topology):
    start = time.perf_counter()
    report = run_check(okws_topology)
    elapsed = time.perf_counter() - start
    bad = [r.policy.describe() for r in report.violations()]
    assert report.ok, f"violated: {bad}\n{report.format()}"
    assert not report.truncated
    assert len(report.results) >= 10  # the full battery, not a stub
    kinds = {r.policy.kind for r in report.results}
    assert kinds == {
        "isolation",
        "capability-confinement",
        "mandatory-declassifier",
        "dead-edge",
    }
    # Acceptance criterion: the OKWS model checks in seconds, not minutes.
    assert elapsed < 10.0, f"check took {elapsed:.1f}s"


def test_okws_arteries_are_live(okws_topology):
    report = run_check(okws_topology)
    dead = {name for name, _ in report.dead_edges}
    assert not any(name.startswith("<wire>->") for name in dead)
    assert not any(name.startswith("ok-demux->") for name in dead)


def test_trusted_set_matches_the_paper():
    assert set(TRUSTED) == {"idd", "ok-demux", "netd", "ok-dbproxy", "okc"}


def test_extracted_topology_survives_serialization(okws_topology):
    again = loads(okws_topology.dumps())
    assert set(again.processes) == set(okws_topology.processes)
    assert len(again.edges) == len(okws_topology.edges)
    report = run_check(again)
    assert report.ok, report.format()
