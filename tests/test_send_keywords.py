"""The unified cs/ds/v/dr discretionary-label keywords on Send (and
Channel.call), with the long spellings as compatible aliases."""

import pytest

from repro.core.labels import Label
from repro.core.levels import L2, L3, STAR
from repro.kernel import Kernel, KernelConfig, NewPort, Recv, Send, SetPortLabel

CS = Label({0x42: L3}, STAR)
DS = Label({0x43: STAR}, L3)
V = Label({0x44: L3}, L2)
DR = Label({0x45: L3}, STAR)


def test_short_names_are_fields():
    send = Send(1, "payload", cs=CS, ds=DS, v=V, dr=DR)
    assert (send.cs, send.ds, send.v, send.dr) == (CS, DS, V, DR)


def test_long_names_still_accepted():
    send = Send(
        1,
        "payload",
        contaminate=CS,
        decontaminate_send=DS,
        verify=V,
        decontaminate_receive=DR,
    )
    assert (send.cs, send.ds, send.v, send.dr) == (CS, DS, V, DR)
    # ... and readable through the alias properties.
    assert send.contaminate is CS
    assert send.decontaminate_send is DS
    assert send.verify is V
    assert send.decontaminate_receive is DR


def test_positional_order_matches_figure_4():
    send = Send(1, "d", CS, DS, V, DR)
    assert (send.cs, send.ds, send.v, send.dr) == (CS, DS, V, DR)


def test_short_and_long_equal():
    assert Send(1, "d", cs=CS, v=V) == Send(1, "d", contaminate=CS, verify=V)


def test_conflicting_spellings_rejected():
    with pytest.raises(TypeError):
        Send(1, "d", cs=CS, contaminate=CS)
    with pytest.raises(TypeError):
        Send(1, "d", nonsense=CS)


def test_kernel_honours_short_names():
    kernel = Kernel(config=KernelConfig())
    state = {}

    def receiver(ctx):
        from repro.kernel.syscalls import GetLabels

        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        state["port"] = port
        msg = yield Recv(port=port)
        state["payload"] = msg.payload
        send_label, _ = yield GetLabels()
        state["send_after"] = send_label

    def sender(ctx):
        from repro.kernel.syscalls import NewHandle

        taint = yield NewHandle()
        state["taint"] = taint
        # cs contaminates; dr (backed by the sender's taint ⋆) raises the
        # receiver's receive label so the tainted delivery is admitted.
        yield Send(
            state["port"],
            "x",
            cs=Label({taint: L3}, STAR),
            dr=Label({taint: L3}, STAR),
        )

    kernel.spawn(receiver, "receiver")
    kernel.run()
    kernel.spawn(sender, "sender")
    kernel.run()
    # The contamination travelled: the receiver's send label now carries
    # the taint at 3.
    assert state["payload"] == "x"
    assert state["send_after"](state["taint"]) == L3


def test_channel_call_accepts_both_spellings():
    import inspect

    from repro.ipc.rpc import Channel

    signature = inspect.signature(Channel.call)
    assert {"cs", "ds", "v", "dr"} <= set(signature.parameters)
    # The alias path just forwards to Send, which rejects unknown names.
    chan = Channel(0x10)
    gen = chan.call(0x20, {}, verify=V)
    send = next(gen)
    assert isinstance(send, Send) and send.v is V
