"""The Figure 4 label semantics, exercised through real kernel IPC:
contamination, decontamination, verification, port labels, and the
unreliable-send discipline (paper Sections 4 and 5)."""


from repro.core.labels import Label
from repro.core.levels import L0, L1, L2, L3, STAR
from repro.kernel import ChangeLabel, GetLabels, NewHandle, NewPort, Recv, Send, SetPortLabel
from repro.kernel.errors import InvalidArgument


def open_port():
    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    return port


def spawn_listener(kernel, name="listener", raise_receive=None):
    """A process that records everything it receives (payload, labels)."""
    log = []

    def body(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        if raise_receive is not None:
            # Listener cannot raise its own receive label without ⋆, so
            # tests use ChangeLabel(receive=...) only to *lower*; raising
            # is exercised via decontaminating messages elsewhere.
            yield ChangeLabel(receive=raise_receive)
        while True:
            msg = yield Recv(port=port)
            send, receive = yield GetLabels()
            log.append((msg.payload, msg.verify, send, receive))

    proc = kernel.spawn(body, name)
    kernel.run()
    return proc, log


# -- contamination (CS, Equations 3-5) ------------------------------------------------


def test_contamination_taints_receiver(kernel):
    listener, log = spawn_listener(kernel)

    def sender(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        # CS at level 2 flows to a default receiver (QR default is 2).
        yield Send(ctx.env["t"], "tainted", contaminate=Label({h: L2}, STAR))

    s = kernel.spawn(sender, "sender", env={"t": listener.env["port"]})
    kernel.run()
    assert len(log) == 1
    payload, verify, send, receive = log[0]
    assert send(s.env["h"]) == L2  # the receiver is now contaminated


def test_contamination_level3_blocked_by_default_receive(kernel):
    listener, log = spawn_listener(kernel)

    def sender(ctx):
        h = yield NewHandle()
        yield Send(ctx.env["t"], "secret", contaminate=Label({h: L3}, STAR))

    kernel.spawn(sender, "sender", env={"t": listener.env["port"]})
    kernel.run()
    # QR default 2 < 3: silently dropped.
    assert log == []
    assert kernel.drop_log.count("label-check") == 1


def test_contamination_needs_no_privilege(kernel):
    # Any process can contaminate with a handle it does not control.
    listener, log = spawn_listener(kernel)
    foreign = 424242  # a handle value the sender never created

    def sender(ctx):
        yield Send(ctx.env["t"], "x", contaminate=Label({foreign: L2}, STAR))

    kernel.spawn(sender, "sender", env={"t": listener.env["port"]})
    kernel.run()
    assert len(log) == 1
    assert log[0][2](foreign) == L2


def test_contamination_is_transitive(kernel):
    # A taints B; B's subsequent messages carry the taint to C's sorrow.
    relay_log = []

    def relay(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        msg = yield Recv(port=port)          # gets contaminated here
        yield Send(msg.payload["fwd"], "laundered?")

    c_listener, c_log = spawn_listener(kernel)
    # C refuses h-tainted data: lower its receive label for h.
    relay_proc = kernel.spawn(relay, "relay")
    kernel.run()

    def a(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        yield Send(
            ctx.env["relay"],
            {"fwd": ctx.env["c"]},
            contaminate=Label({h: L3}, STAR),
            decontaminate_receive=Label({h: L3}, STAR),  # we hold h ⋆
        )

    kernel.spawn(
        a, "a", env={"relay": relay_proc.env["port"], "c": c_listener.env["port"]}
    )
    kernel.run()
    # The relay was tainted at level 3; C's default receive (2) refuses.
    assert c_log == []
    assert kernel.drop_log.count("label-check") == 1


# -- star preservation (Equation 5) --------------------------------------------------


def test_star_holder_immune_to_contamination(kernel):
    log = []

    def holder(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        port = yield from open_port()
        ctx.env["port"] = port
        # Raise own receive so arbitrarily tainted data may arrive; we can,
        # because we hold h ⋆.
        yield ChangeLabel(raise_receive={h: L3})
        msg = yield Recv(port=port)
        send, _ = yield GetLabels()
        log.append(send(h))

    holder_proc = kernel.spawn(holder, "holder")
    kernel.run()
    h = holder_proc.env["h"]

    def sender(ctx):
        yield Send(ctx.env["t"], "dirty", contaminate=Label({h: L3}, STAR))

    kernel.spawn(sender, "sender", env={"t": holder_proc.env["port"]})
    kernel.run()
    # PS(h) stays ⋆ despite receiving h-3 contamination (Equation 5).
    assert log == [STAR]


# -- decontamination (DS/DR, requirements 2-3) -----------------------------------------


def test_grant_star_via_ds(kernel):
    listener, log = spawn_listener(kernel)

    def granter(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        yield Send(ctx.env["t"], "gift", decontaminate_send=Label({h: STAR}, L3))

    g = kernel.spawn(granter, "granter", env={"t": listener.env["port"]})
    kernel.run()
    assert log[0][2](g.env["h"]) == STAR  # receiver now controls h


def test_ds_without_star_is_dropped(kernel):
    listener, log = spawn_listener(kernel)
    foreign = 777777

    def imposter(ctx):
        yield Send(ctx.env["t"], "gift", decontaminate_send=Label({foreign: STAR}, L3))

    kernel.spawn(imposter, "imposter", env={"t": listener.env["port"]})
    kernel.run()
    assert log == []
    assert kernel.drop_log.count("decont-privilege") == 1


def test_dr_without_star_is_dropped(kernel):
    listener, log = spawn_listener(kernel)
    foreign = 888888

    def imposter(ctx):
        yield Send(
            ctx.env["t"], "x", decontaminate_receive=Label({foreign: L3}, STAR)
        )

    kernel.spawn(imposter, "imposter", env={"t": listener.env["port"]})
    kernel.run()
    assert log == []
    assert kernel.drop_log.count("decont-privilege") == 1


def test_dr_raises_receiver_receive_label(kernel):
    listener, log = spawn_listener(kernel)

    def granter(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        yield Send(ctx.env["t"], "one", decontaminate_receive=Label({h: L3}, STAR))
        # Now a level-3 contamination can reach the listener.
        yield Send(ctx.env["t"], "two", contaminate=Label({h: L3}, STAR))

    g = kernel.spawn(granter, "granter", env={"t": listener.env["port"]})
    kernel.run()
    assert [entry[0] for entry in log] == ["one", "two"]
    assert log[1][3](g.env["h"]) == L3  # receive label was raised
    assert log[1][2](g.env["h"]) == L3  # and the taint landed


def test_ds_lowers_receiver_send_label(kernel):
    # Decontaminating a tainted process back down (the ⊓ DS term).
    log = []

    def victim(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        while True:
            msg = yield Recv(port=port)
            send, _ = yield GetLabels()
            log.append((msg.payload, dict(send.entries())))

    victim_proc = kernel.spawn(victim, "victim")
    kernel.run()

    def controller(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        yield Send(ctx.env["t"], "taint", contaminate=Label({h: L2}, STAR))
        yield Send(ctx.env["t"], "clean", decontaminate_send=Label({h: L1}, L3))

    c = kernel.spawn(controller, "controller", env={"t": victim_proc.env["port"]})
    kernel.run()
    h = c.env["h"]
    assert log[0][1].get(h) == L2   # tainted after the first message
    assert h not in log[1][1]        # back at the default after the DS


# -- verification labels (V, Equation 8) ----------------------------------------------


def test_verify_label_passed_up(kernel):
    listener, log = spawn_listener(kernel)

    def sender(ctx):
        h = yield NewHandle()
        ctx.env["h"] = h
        yield Send(ctx.env["t"], "claim", verify=Label({h: L0}, L3))

    s = kernel.spawn(sender, "sender", env={"t": listener.env["port"]})
    kernel.run()
    assert log[0][1](s.env["h"]) == L0  # V visible to the application


def test_verify_must_bound_senders_label(kernel):
    # ES ⊑ V is forced by the delivery check: a tainted sender cannot
    # present a clean V.
    listener, log = spawn_listener(kernel)

    def sender(ctx):
        h = yield NewHandle()
        yield ChangeLabel(send=Label({h: STAR}, L1).with_entry(h, L2))  # self-taint h 2
        yield Send(ctx.env["t"], "lie", verify=Label({h: L1}, L3))

    kernel.spawn(sender, "sender", env={"t": listener.env["port"]})
    kernel.run()
    assert log == []
    assert kernel.drop_log.count("label-check") == 1


def test_default_verify_restricts_nothing(kernel):
    listener, log = spawn_listener(kernel)

    def sender(ctx):
        yield Send(ctx.env["t"], "plain")

    kernel.spawn(sender, "sender", env={"t": listener.env["port"]})
    kernel.run()
    assert log[0][1] == Label.top()


# -- port labels and capabilities (Section 5.5) ------------------------------------------


def test_new_port_is_sealed_by_default(kernel):
    # new_port sets pR(p) <- 0: nobody can send until granted.
    log = []

    def owner(ctx):
        port = yield NewPort()  # label defaults to {3}, then pR(p) <- 0
        ctx.env["port"] = port
        msg = yield Recv(port=port)
        log.append(msg.payload)

    o = kernel.spawn(owner, "owner")
    kernel.run()

    def stranger(ctx):
        yield Send(ctx.env["t"], "knock")

    kernel.spawn(stranger, "stranger", env={"t": o.env["port"]})
    kernel.run()
    assert log == []
    assert kernel.drop_log.count("label-check") == 1


def test_capability_grant_and_redelegation(kernel):
    # P grants Q the send right with DS = {p ⋆, 3}; Q re-delegates to R.
    log = []

    def p_owner(ctx):
        port = yield NewPort()
        ctx.env["port"] = port
        q_port = yield from open_port()
        ctx.env["q_hello"] = q_port
        hello = yield Recv(port=q_port)          # Q announces itself
        yield Send(hello.payload["q"], {"cap": port}, decontaminate_send=Label({port: STAR}, L3))
        while True:
            msg = yield Recv(port=port)
            log.append(msg.payload)

    p = kernel.spawn(p_owner, "P")
    kernel.run()

    def r_body(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        msg = yield Recv(port=port)              # receives the delegated cap
        yield Send(msg.payload["cap"], "from-R")

    r = kernel.spawn(r_body, "R")
    kernel.run()

    def q_body(ctx):
        my = yield from open_port()
        yield Send(ctx.env["p_hello"], {"q": my})
        grant = yield Recv(port=my)
        cap = grant.payload["cap"]
        yield Send(cap, "from-Q")
        # Re-delegate to R: we received p ⋆, so we may grant it onward.
        yield Send(ctx.env["r"], {"cap": cap}, decontaminate_send=Label({cap: STAR}, L3))

    kernel.spawn(q_body, "Q", env={"p_hello": p.env["q_hello"], "r": r.env["port"]})
    kernel.run()
    assert log == ["from-Q", "from-R"]


def test_set_port_label_opens_port_verbatim(kernel):
    # set_port_label does not re-pin pR(p) <- 0: {3} really opens it.
    log = []

    def owner(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        msg = yield Recv(port=port)
        log.append(msg.payload)

    o = kernel.spawn(owner, "owner")
    kernel.run()

    def stranger(ctx):
        yield Send(ctx.env["t"], "open!")

    kernel.spawn(stranger, "stranger", env={"t": o.env["port"]})
    kernel.run()
    assert log == ["open!"]


def test_port_label_blocks_contamination_in_kernel(kernel):
    # The mail-reader pattern (Section 5.5): the port label rejects tainted
    # senders *before* delivery, so the receiver is never contaminated.
    log = []

    def reader(ctx):
        port = yield NewPort(Label({}, L2))   # pR = {p 0, 2}: taint <= 2 only...
        # then open it to untainted senders explicitly:
        yield SetPortLabel(port, Label({}, L2))
        ctx.env["port"] = port
        while True:
            msg = yield Recv(port=port)
            send, _ = yield GetLabels()
            # Entries above * would be taint; the port's own * is expected.
            taint = [lvl for _, lvl in send.entries() if lvl != STAR]
            log.append((msg.payload, taint))

    r = kernel.spawn(reader, "reader")
    kernel.run()

    def attachment(ctx):
        h = yield NewHandle()
        yield ChangeLabel(send=Label({h: L3}, L1).with_entry(h, L3))
        yield Send(ctx.env["t"], "malware")   # tainted: blocked by pR

    def friend(ctx):
        yield Send(ctx.env["t"], "hello")

    kernel.spawn(attachment, "attachment", env={"t": r.env["port"]})
    kernel.spawn(friend, "friend", env={"t": r.env["port"]})
    kernel.run()
    assert [entry[0] for entry in log] == ["hello"]
    assert log[0][1] == []  # reader's send label never picked up taint
    assert kernel.drop_log.count("label-check") == 1


def test_dr_bounded_by_port_label(kernel):
    # Requirement (4): DR ⊑ pR — a receiver's port label caps how much a
    # sender may decontaminate its receive label.
    log = []

    def guarded(ctx):
        h_port = yield NewPort(Label({}, L2))  # port label {p 0, 2}
        ctx.env["port"] = h_port
        # Allow only ourselves... now open to default senders at level <= 2
        # but cap DR at 2 as well:
        yield SetPortLabel(h_port, Label({}, L2))
        msg = yield Recv(port=h_port)
        log.append(msg.payload)

    g = kernel.spawn(guarded, "guarded")
    kernel.run()

    def granter(ctx):
        h = yield NewHandle()
        # DR = {h 3} exceeds pR's {2}: requirement (4) fails, message drops.
        yield Send(ctx.env["t"], "x", decontaminate_receive=Label({h: L3}, STAR))

    kernel.spawn(granter, "granter", env={"t": g.env["port"]})
    kernel.run()
    assert log == []
    assert kernel.drop_log.count("port-label") == 1


# -- ChangeLabel rules ------------------------------------------------------------------


def test_self_contamination_allowed(kernel):
    done = []

    def prog(ctx):
        h = yield NewHandle()
        yield ChangeLabel(send=Label({h: L3}, L1).with_entry(h, L3))
        send, _ = yield GetLabels()
        done.append(send(h))

    kernel.spawn(prog, "prog")
    kernel.run()
    assert done == [L3]


def test_dropping_own_star_is_allowed_and_permanent(kernel):
    done = []

    def prog(ctx):
        h = yield NewHandle()
        yield ChangeLabel(drop_send=(h,))
        send, _ = yield GetLabels()
        done.append(send(h))
        # And it cannot be recovered by self-modification:
        try:
            yield ChangeLabel(send=Label({h: STAR}, L1))
        except InvalidArgument:
            done.append("denied")

    kernel.spawn(prog, "prog")
    kernel.run()
    assert done == [L1, "denied"]


def test_lowering_send_label_denied(kernel):
    caught = []

    def prog(ctx):
        h = yield NewHandle()
        yield ChangeLabel(send=Label({h: STAR}, L1).with_entry(h, L3))  # raise ok
        try:
            yield ChangeLabel(send=Label({h: L1}, L1))  # lowering: no
        except InvalidArgument:
            caught.append(True)

    kernel.spawn(prog, "prog")
    kernel.run()
    assert caught == [True]


def test_raising_receive_requires_star(kernel):
    caught = []

    def prog(ctx):
        try:
            yield ChangeLabel(raise_receive={12345: L3})
        except InvalidArgument:
            caught.append(True)

    kernel.spawn(prog, "prog")
    kernel.run()
    assert caught == [True]


def test_lowering_receive_always_allowed(kernel):
    done = []

    def prog(ctx):
        yield ChangeLabel(receive=Label({54321: L1}, L2))
        _, receive = yield GetLabels()
        done.append(receive(54321))

    kernel.spawn(prog, "prog")
    kernel.run()
    assert done == [L1]


def test_drop_send_cannot_declassify(kernel):
    caught = []

    def prog(ctx):
        h = yield NewHandle()
        yield ChangeLabel(send=Label({h: STAR}, L1).with_entry(h, L3))  # now h 3
        try:
            yield ChangeLabel(drop_send=(h,))  # would lower 3 -> 1
        except InvalidArgument:
            caught.append(True)

    kernel.spawn(prog, "prog")
    kernel.run()
    assert caught == [True]


def test_new_handle_grants_star(kernel):
    done = []

    def prog(ctx):
        h = yield NewHandle()
        send, _ = yield GetLabels()
        done.append(send(h))

    kernel.spawn(prog, "prog")
    kernel.run()
    assert done == [STAR]
