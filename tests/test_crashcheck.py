"""The crash-consistency checker: exhaustive enumeration, the oracle,
minimization, byte-identical replay, and the CLI surface."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.cli import main as cli_main
from repro.faults.plan import FaultPlan
from repro.store import crashcheck as CC
from repro.store import wal


@pytest.fixture(scope="module")
def recording(tmp_path_factory):
    """Record the board workload once for the whole module (boots a full
    OKWS site); every offline check shares the image."""
    path = str(tmp_path_factory.mktemp("crashcheck") / "wal.log")
    data, boot = CC.record_workload(path)
    return data, boot


def test_recording_is_clean_and_phased(recording):
    data, boot = recording
    scanned = wal.scan(data)
    assert not scanned.torn
    assert boot < len(scanned.records)
    # Boot = schema (users, posts) + user seeding; workload = 3 drafts +
    # 1 publish, one single-write transaction each.
    workload = [r for i, r in enumerate(scanned.records) if i >= boot]
    assert {r.type for r in workload} == {"begin", "write", "commit"}
    assert len(workload) == 3 * len(CC.BOARD_REQUESTS)


def test_enumeration_is_exhaustive(recording):
    """Every byte of a clean image is a distinct crash point: for each
    record, its boundary plus every torn prefix length."""
    data, _ = recording
    points = CC.crash_points(data)
    assert len(points) == len(data)
    assert len({(p.at_io, p.torn_bytes) for p in points}) == len(points)
    records = wal.scan(data).records
    assert max(p.at_io for p in points) == len(records)
    assert all(0 <= p.torn_bytes < records[p.at_io - 1].length for p in points)


def test_crash_points_refuse_torn_recordings(recording):
    data, _ = recording
    with pytest.raises(ValueError):
        CC.crash_points(data[:-1])


def test_strict_recovery_survives_every_crash_point(recording):
    """The acceptance bar: durability and IFC monotonicity hold at every
    log boundary and every torn-tail prefix."""
    data, boot = recording
    report = CC.sweep(data, boot_records=boot, label_check=True)
    assert report.points == len(data)
    assert report.ok
    assert report.failures == []
    assert report.plan is None


def test_broken_recovery_is_caught_and_minimized(recording):
    data, boot = recording
    report = CC.sweep(data, boot_records=boot, label_check=False)
    assert not report.ok
    kinds = {v.kind for f in report.failures for v in f.violations}
    # Naive redo resurrects uncommitted rows (atomicity), loses rows the
    # oracle keeps when double-applied writes poison the engine
    # (durability), and applies unauthorized declassifications
    # (ifc-weakening).
    assert kinds == {"atomicity", "durability", "ifc-weakening"}
    # Minimization lands in the workload phase (replayable) and still
    # reproduces offline.
    assert report.minimized is not None
    assert report.minimized.at_io > boot
    assert CC.check_prefix(data[: report.minimized.offset], label_check=False)
    # No failing workload-phase point is cheaper than the minimum.
    cheapest = min(
        (f.point for f in report.failures if f.point.at_io > boot),
        key=lambda p: (p.at_io, p.torn_bytes),
    )
    assert report.minimized == cheapest


def test_counterexample_plan_roundtrips_as_a_faultplan(recording):
    data, boot = recording
    report = CC.sweep(data, boot_records=boot, label_check=False)
    doc = report.plan
    assert doc["schema"] == "faultplan/v1"
    # The loader must accept the document despite the extra metadata key.
    plan = FaultPlan.from_json(doc)
    (rule,) = plan.rules
    assert rule.kind == "crash_at_io"
    assert rule.at_io == report.minimized.at_io
    assert rule.max_fires == 1
    meta = doc["crashcheck"]
    assert meta["sha256"] == CC.image_digest(data[: report.minimized.offset])
    assert meta["offset"] == report.minimized.offset


def test_ifc_weakening_points_to_the_publish_transaction(recording):
    """The sharpest defect class: crash inside the final declassifying
    transaction (publish) — naive redo applies the uncommitted
    declassification, turning private drafts public."""
    data, _ = recording
    records = wal.scan(data).records
    publish_write = next(
        i + 1
        for i, r in enumerate(records)
        if r.type == "write" and r.payload["declass"]
    )
    # Crash at the commit boundary: the declassifying write is durable,
    # its commit is not.
    prefix = data[: records[publish_write].offset]
    violations = CC.check_prefix(prefix, label_check=False)
    assert any(v.kind == "ifc-weakening" for v in violations)
    # Strict recovery at the same point: clean.
    assert CC.check_prefix(prefix, label_check=True) == []


def test_replay_reproduces_byte_identically(recording, tmp_path):
    data, boot = recording
    report = CC.sweep(data, boot_records=boot, label_check=False)
    result = CC.replay_counterexample(report.plan, str(tmp_path))
    assert result.crashed
    assert result.byte_identical
    assert result.crash_bytes == report.minimized.offset
    assert result.reproduced


def test_replay_of_a_torn_point_is_byte_identical(recording, tmp_path):
    data, _ = recording
    records = wal.scan(data).records
    last = records[-1]
    point = CC.CrashPoint(len(records), 5, last.offset + 5)
    doc = CC.counterexample_plan(data, point, label_check=True)
    result = CC.replay_counterexample(doc, str(tmp_path))
    assert result.crashed
    assert result.byte_identical
    # Strict recovery at this point is clean, so nothing reproduces.
    assert result.violations == []
    assert not result.reproduced


def test_report_json_shape(recording):
    data, boot = recording
    doc = CC.sweep(data, boot_records=boot, label_check=True).to_json()
    assert doc["schema"] == "crashcheck/v1"
    assert doc["ok"] is True
    assert doc["points"] == len(data)
    json.dumps(doc)  # must be serializable as-is


def test_crashcheck_sarif(recording):
    from repro.analysis import sarif

    data, boot = recording
    report = CC.sweep(data, boot_records=boot, label_check=False)
    doc = sarif.crashcheck_sarif(report)
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "crashcheck"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {
        "durability",
        "atomicity",
        "ifc-weakening",
    }
    assert run["results"]
    assert all("plan" in r["properties"] for r in run["results"])

    clean = sarif.crashcheck_sarif(CC.sweep(data, boot_records=boot))
    assert clean["runs"][0]["results"] == []


def test_cli_sweep_exit_codes(recording, tmp_path, capsys):
    data, _ = recording
    image = tmp_path / "image.wal"
    image.write_bytes(data)
    assert (
        cli_main(["crashcheck", "--wal", str(image), "--boot-records", "10"]) == 0
    )
    plan_path = tmp_path / "min-plan.json"
    code = cli_main(
        [
            "crashcheck",
            "--wal",
            str(image),
            "--boot-records",
            "10",
            "--broken-recovery",
            "--plan-out",
            str(plan_path),
            "--format",
            "json",
            "--out",
            str(tmp_path / "report.json"),
        ]
    )
    assert code == 1
    plan_doc = json.loads(plan_path.read_text())
    assert plan_doc["crashcheck"]["label_check"] is False
    report_doc = json.loads((tmp_path / "report.json").read_text())
    assert report_doc["ok"] is False
    capsys.readouterr()


def test_cli_replay_exit_codes(recording, tmp_path, capsys):
    data, boot = recording
    report = CC.sweep(data, boot_records=boot, label_check=False)
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(report.plan))
    workdir = tmp_path / "replay"
    workdir.mkdir()
    assert cli_main(["crashcheck", "--replay", str(plan_path), "--dir", str(workdir)]) == 1
    assert os.path.exists(workdir / "replay-wal.log.crash")
    capsys.readouterr()


def test_cli_rejects_bad_inputs(tmp_path, capsys):
    assert cli_main(["crashcheck", "--wal", str(tmp_path / "missing.wal")]) == 2
    bad = tmp_path / "notaplan.json"
    bad.write_text("{}")
    assert cli_main(["crashcheck", "--replay", str(bad)]) == 2
    capsys.readouterr()
