"""Unit tests for the SQL subset parser."""

import pytest

from repro.db import sql as S


def test_create_table():
    ast = S.parse("CREATE TABLE users (uid INTEGER, name TEXT, blob BLOB)")
    assert ast == S.CreateTable(
        "users", (("uid", "INTEGER"), ("name", "TEXT"), ("blob", "BLOB"))
    )


def test_insert_with_placeholders():
    ast = S.parse("INSERT INTO t (a, b) VALUES (?, ?)")
    assert isinstance(ast, S.Insert)
    assert ast.values == (S.Placeholder(0), S.Placeholder(1))


def test_insert_with_literals():
    ast = S.parse("INSERT INTO t (a, b) VALUES (7, 'it''s')")
    assert ast.values == (7, "it's")


def test_select_star():
    ast = S.parse("SELECT * FROM t")
    assert ast == S.Select("t", ("*",), ())


def test_select_where_and():
    ast = S.parse("SELECT uid FROM users WHERE name = ? AND password = ?")
    assert ast.columns == ("uid",)
    assert ast.where == (
        S.Condition("name", S.Placeholder(0)),
        S.Condition("password", S.Placeholder(1)),
    )


def test_update():
    ast = S.parse("UPDATE t SET a = ?, b = 3 WHERE c = 'x'")
    assert ast == S.Update(
        "t",
        (("a", S.Placeholder(0)), ("b", 3)),
        (S.Condition("c", "x"),),
    )


def test_delete():
    ast = S.parse("DELETE FROM t WHERE a = 1")
    assert ast == S.Delete("t", (S.Condition("a", 1),))


def test_delete_without_where():
    assert S.parse("DELETE FROM t") == S.Delete("t", ())


def test_keywords_case_insensitive():
    ast = S.parse("select a from t where b = 1")
    assert isinstance(ast, S.Select)


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "DROP TABLE t",
        "SELECT FROM t",
        "INSERT INTO t (a) VALUES (1, 2)",
        "CREATE TABLE t (a FANCYTYPE)",
        "SELECT a FROM t WHERE b > 1",
        "SELECT a FROM t extra garbage",
        "INSERT INTO t (a) VALUES (@)",
    ],
)
def test_rejects_malformed(bad):
    with pytest.raises(S.SqlError):
        S.parse(bad)


def test_placeholder_numbering_left_to_right():
    ast = S.parse("UPDATE t SET a = ? WHERE b = ? AND c = ?")
    assert ast.assignments[0][1] == S.Placeholder(0)
    assert ast.where[0].value == S.Placeholder(1)
    assert ast.where[1].value == S.Placeholder(2)
