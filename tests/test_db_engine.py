"""Unit tests for the relational engine."""

import pytest

from repro.db import Database, SqlError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE users (uid INTEGER, name TEXT, password TEXT)")
    for uid, name in enumerate(["alice", "bob", "carol"], start=1):
        database.execute(
            "INSERT INTO users (uid, name, password) VALUES (?, ?, ?)",
            (uid, name, f"pw-{name}"),
        )
    return database


def test_select_all(db):
    result = db.execute("SELECT * FROM users")
    assert len(result.rows) == 3
    assert result.rows_scanned == 3


def test_select_where(db):
    result = db.execute("SELECT uid FROM users WHERE name = ?", ("bob",))
    assert result.rows == [{"uid": 2}]
    # The modelled engine is unindexed: a lookup scans the whole table.
    assert result.rows_scanned == 3


def test_select_where_and(db):
    result = db.execute(
        "SELECT uid FROM users WHERE name = ? AND password = ?", ("bob", "nope")
    )
    assert result.rows == []


def test_select_contradictory_where(db):
    result = db.execute("SELECT uid FROM users WHERE name = 'alice' AND name = 'bob'")
    assert result.rows == []


def test_update(db):
    result = db.execute("UPDATE users SET password = ? WHERE uid = ?", ("new", 1))
    assert result.rows_affected == 1
    assert db.execute("SELECT password FROM users WHERE uid = 1").rows == [
        {"password": "new"}
    ]


def test_update_then_lookup_uses_fresh_data(db):
    # Index invalidation: a lookup after an update must see new values.
    db.execute("SELECT uid FROM users WHERE password = ?", ("pw-alice",))
    db.execute("UPDATE users SET password = ? WHERE uid = ?", ("changed", 1))
    assert db.execute("SELECT uid FROM users WHERE password = ?", ("pw-alice",)).rows == []
    assert db.execute("SELECT uid FROM users WHERE password = ?", ("changed",)).rows == [
        {"uid": 1}
    ]


def test_delete(db):
    result = db.execute("DELETE FROM users WHERE name = 'bob'")
    assert result.rows_affected == 1
    assert len(db.execute("SELECT * FROM users").rows) == 2


def test_insert_after_select_visible(db):
    db.execute("SELECT uid FROM users WHERE name = ?", ("dave",))
    db.execute("INSERT INTO users (uid, name, password) VALUES (4, 'dave', 'x')")
    assert db.execute("SELECT uid FROM users WHERE name = ?", ("dave",)).rows == [
        {"uid": 4}
    ]


def test_type_checking(db):
    with pytest.raises(SqlError):
        db.execute("INSERT INTO users (uid, name, password) VALUES ('x', 'd', 'p')")


def test_unknown_table(db):
    with pytest.raises(SqlError):
        db.execute("SELECT * FROM missing")


def test_unknown_column(db):
    with pytest.raises(SqlError):
        db.execute("SELECT nope FROM users")
    with pytest.raises(SqlError):
        db.execute("SELECT uid FROM users WHERE nope = 1")


def test_duplicate_table(db):
    with pytest.raises(SqlError):
        db.execute("CREATE TABLE users (x INTEGER)")


def test_duplicate_column():
    db = Database()
    with pytest.raises(SqlError):
        db.execute("CREATE TABLE t (a INTEGER, a TEXT)")


def test_missing_parameter(db):
    with pytest.raises(SqlError):
        db.execute("SELECT uid FROM users WHERE name = ?")


def test_total_rows_scanned_accumulates(db):
    before = db.total_rows_scanned
    db.execute("SELECT * FROM users")
    db.execute("SELECT uid FROM users WHERE name = 'alice'")
    assert db.total_rows_scanned == before + 6
