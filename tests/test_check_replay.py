"""Cross-validation: asbcheck counterexamples replayed on the real kernel.

The model checker claims its Figure 4 is the kernel's Figure 4.  These
tests make that falsifiable: every counterexample trace is re-executed
through ``Kernel._sys_send`` / ``Kernel._deliver`` (under the
differential sanitizer) and must reproduce the same deliveries, the same
drop reasons, and the same receiver labels, hop for hop.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.check import Engine, Exploration, run_check
from repro.analysis.model import Topology, load
from repro.analysis.replay import ReplayError, replay_trace
from repro.core.labels import Label
from repro.core.levels import L3, STAR
from repro.kernel.config import KernelConfig
from repro.kernel.errors import DROP_LABEL_CHECK
from repro.kernel.kernel import Kernel

TOPOLOGIES = Path(__file__).resolve().parents[1] / "examples" / "topologies"


def test_leak_counterexample_replays_identically():
    topo = load(TOPOLOGIES / "leaky_site.json")
    report = run_check(topo)
    violation = next(
        r.violation for r in report.violations() if r.policy.kind == "isolation"
    )
    kernel = Kernel(config=KernelConfig(sanitize=True))
    result = replay_trace(topo, violation.trace, kernel=kernel)
    assert result.ok, result.format()
    # The leak manifests for real: the sink's kernel send label now
    # carries the other user's taint at 3.
    uT = topo.handles["uT:u"]
    sink = kernel._replay_tasks["sink_v"]
    assert sink.send_label.to_label()(uT) == L3
    assert not kernel.sanitizer.violations


def test_dropped_hop_replays_as_the_same_drop():
    # In the clean site the forward delivers only before the front is
    # contaminated; force the contaminated ordering and the kernel must
    # drop it with the model's reason.
    topo = load(TOPOLOGIES / "clean_site.json")
    engine = Engine(topo)
    expl = Exploration(engine, set(), exact=True, max_states=10_000)
    uT = topo.handles["uT:u"]
    front = engine.proc_names.index("web_front")
    sid = next(
        sid
        for sid, state in enumerate(expl.order)
        if engine.store.label(state[2 * front])(uT) == L3
    )
    forward = next(e for e in engine.edges if e.name == "front->sink")
    trace = expl.trace_to(sid, extra=forward)
    assert not trace[-1].delivered
    assert trace[-1].drop == DROP_LABEL_CHECK
    result = replay_trace(topo, trace)
    assert result.ok, result.format()
    assert result.steps[-1].drop == DROP_LABEL_CHECK


def test_wire_edges_replay_through_inject():
    topo = Topology("wired")
    topo.add_process("<wire>", send=Label.send_default())
    topo.add_process("netd")
    topo.add_port("wire_port", owner="netd", label=Label({}, L3))
    topo.add_edge("<wire>", "wire_port", name="<wire>->netd")
    engine = Engine(topo)
    expl = Exploration(engine, set(), exact=True, max_states=100)
    trace = expl.trace_to(0, extra=engine.edges[0])
    result = replay_trace(topo, trace)
    assert result.ok, result.format()
    assert result.steps[0].delivered


def test_fork_port_traces_are_refused():
    topo = Topology("forky")
    topo.add_process("a", send=Label.send_default().with_entry(topo.handle("p"), STAR))
    topo.add_process("base")
    topo.add_port("p", owner="base", fork=True)
    topo.add_edge("a", "p", name="a->base")
    engine = Engine(topo)
    expl = Exploration(engine, set(), exact=True, max_states=100)
    trace = expl.trace_to(0, extra=engine.edges[0])
    with pytest.raises(ReplayError):
        replay_trace(topo, trace)
