"""The protocol helpers and RPC plumbing (repro.ipc)."""


from repro.core.labels import Label
from repro.ipc import Channel, protocol as P
from repro.ipc.rpc import serve_forever as serve
from repro.kernel import NewPort, Recv, Send, SetPortLabel


def test_request_and_reply_to():
    req = P.request(P.READ, reply=7, path="/x")
    assert req == {"type": "READ", "reply": 7, "path": "/x"}
    rep = P.reply_to(req, data=b"hi")
    assert rep == {"type": "READ_R", "data": b"hi"}


def test_reply_to_explicit_type_and_tag():
    req = P.request(P.LOGIN, reply=1, tag=42, user="u")
    rep = P.reply_to(req, P.ERROR_R, error="nope")
    assert rep["type"] == P.ERROR_R
    assert rep["tag"] == 42         # correlation tags propagate


def test_is_error():
    assert P.is_error({"type": P.ERROR_R})
    assert not P.is_error({"type": P.READ_R})
    assert not P.is_error("garbage")


def test_channel_call_roundtrip(kernel):
    def server(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        yield from serve(port, _double_handler)

    srv = kernel.spawn(server, "server")
    kernel.run()
    results = []

    def client(ctx):
        chan = yield from Channel.open()
        for n in (3, 5):
            reply = yield from chan.call(ctx.env["t"], P.request("DOUBLE", n=n))
            results.append(reply.payload["n"])

    kernel.spawn(client, "client", env={"t": srv.env["port"]})
    kernel.run()
    assert results == [6, 10]


def _double_handler(msg):
    return P.reply_to(msg.payload, n=msg.payload["n"] * 2)
    yield  # pragma: no cover


def test_serve_forever_skips_replyless_requests(kernel):
    seen = []

    def handler(msg):
        seen.append(msg.payload.get("n"))
        return P.reply_to(msg.payload, ok=True)
        yield  # pragma: no cover

    def server(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        yield from serve(port, handler)

    srv = kernel.spawn(server, "server")
    kernel.run()

    def client(ctx):
        yield Send(srv.env["port"], {"type": "X", "n": 1})   # no reply port
        chan = yield from Channel.open()
        r = yield from chan.call(srv.env["port"], {"type": "X", "n": 2})
        ctx.env["r"] = r.payload

    c = kernel.spawn(client, "client")
    kernel.run()
    assert seen == [1, 2]
    assert c.env["r"]["ok"] is True


def test_channel_open_with_custom_label(kernel):
    # A channel whose port only capability holders can reach.
    log = []

    def owner(ctx):
        chan = yield from Channel.open(Label({}, 2))  # pR = {p 0, 2}
        ctx.env["port"] = chan.port
        msg = yield Recv(port=chan.port)
        log.append(msg.payload)

    o = kernel.spawn(owner, "owner")
    kernel.run()

    def stranger(ctx):
        yield Send(ctx.env["t"], "in")   # default sender: 1 <= 2, passes

    kernel.spawn(stranger, "stranger", env={"t": o.env["port"]})
    kernel.run()
    assert log == ["in"]
