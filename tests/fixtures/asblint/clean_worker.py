"""asblint fixture: a well-behaved OKWS-style worker — zero findings.

Every port disclosure is accompanied by an opened label or a ⋆ grant,
verification credentials are only asserted after the setup message that
grants them, and all contamination crossing a boundary is an explicit
``contaminate=``.
"""

from repro.core.labels import Label
from repro.core.levels import L0, L3, STAR
from repro.kernel.syscalls import EpExit, NewPort, Recv, Send, SetPortLabel


def worker_body(ctx):
    # Bootstrap: announce on an open channel, then wait for the setup
    # message (which grants the verification credential via DS).
    chan = yield NewPort()
    yield SetPortLabel(chan, Label.top())
    yield Send(ctx.env["launcher_port"], {"type": "HELLO", "reply": chan})
    setup = yield Recv(port=chan)

    # Register with the demux, proving the credential the setup granted.
    base = yield NewPort()
    yield SetPortLabel(base, Label.top())
    yield Send(
        setup.payload["demux_port"],
        {"type": "REGISTER", "port": base},
        verify=Label({ctx.env["verify_handle"]: L0}, L3),
    )

    while True:
        msg = yield Recv(port=base)
        # A per-connection reply port: disclosed together with its grant,
        # and the user's taint is declared as explicit contamination.
        conn = yield NewPort()
        yield Send(
            msg.payload["reply"],
            {"type": "OK", "conn": conn},
            decontaminate_send=Label({conn: STAR}, L3),
            contaminate=Label({msg.payload["user_taint"]: L3}, STAR),
        )


def conn_handler(ectx, msg):
    # Event-body style: unknown label history, explicit contamination.
    yield Send(
        msg.payload["reply"],
        {"type": "DATA", "body": "hello"},
        contaminate=Label({msg.payload["taint"]: L3}, STAR),
    )
    yield EpExit()
