"""asblint fixture: ASB002 — implicit contamination (taint creep).

The program raises its own send label to carry ``h`` at level 3, then
keeps sending with no ``contaminate=``: every receiver is silently
contaminated by the floating PS instead of a declared CS.
"""

from repro.core.labels import Label
from repro.core.levels import L1, L3
from repro.kernel.syscalls import ChangeLabel, Send


def chatty_tainted(ctx):
    h = ctx.env["taint_handle"]
    yield ChangeLabel(send=Label({h: L3}, L1))
    yield Send(ctx.env["peer"], {"status": "done"})  # FINDING
