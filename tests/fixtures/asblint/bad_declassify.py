"""asblint fixture: ASB003 — decontamination without ⋆.

A fresh process (PS = {1}) tries to grant ``db_handle`` at ⋆ through
``decontaminate_send``.  Figure 4 requirement (2) — DS(h) < 3 ⇒
PS(h) = ⋆ — provably fails, so the kernel silently drops the send.
"""

from repro.core.labels import Label
from repro.core.levels import L3, STAR
from repro.kernel.syscalls import Send


def overeager_granter(ctx):
    yield Send(  # FINDING
        ctx.env["peer"],
        {"grant": "here you go"},
        decontaminate_send=Label({ctx.env["db_handle"]: STAR}, L3),
    )
