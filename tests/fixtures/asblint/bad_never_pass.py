"""asblint fixture: ASB001 — a send that can never pass the Figure 4 check.

The sender contaminates the message with ``secret`` at level 3 but pins
``verify=`` to level 0: ES(secret) = 3 can never fit under V(secret) = 0,
so the kernel drops the message silently on every execution.
"""

from repro.core.labels import Label
from repro.core.levels import L0, L3
from repro.kernel.syscalls import Send


def classified_broadcast(ctx):
    secret = ctx.env["secret_handle"]
    yield Send(  # FINDING
        ctx.env["peer"],
        {"classified": True},
        contaminate=Label({secret: L3}, L0),
        verify=Label({}, L0),
    )
