"""asblint fixture: ASB004 — a port handle leaked through a payload.

``reply`` still carries the closed ``{reply 0}`` label minted by
``new_port`` and nothing ever grants it, so the peer learns the handle
but can never send to it: the Recv below waits forever and every reply
is dropped as if the network ate it.
"""

from repro.kernel.syscalls import NewPort, Recv, Send


def dead_drop(ctx):
    reply = yield NewPort()
    yield Send(ctx.env["peer"], {"reply_to": reply})  # FINDING
    msg = yield Recv(port=reply)
    yield Send(msg.payload["ack"], {"ok": True})
