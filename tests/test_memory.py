"""Unit and property tests for the page-granular COW memory subsystem
(paper Section 6.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.errors import InvalidArgument, ResourceExhausted
from repro.kernel.memory import (
    AddressSpace,
    DEFAULT_RAM_BYTES,
    EpView,
    PAGE_SIZE,
    PageAccountant,
    pages_for,
)


@pytest.fixture
def accountant():
    return PageAccountant()


@pytest.fixture
def space(accountant):
    return AddressSpace(accountant)


def test_pages_for():
    assert pages_for(1) == 1
    assert pages_for(PAGE_SIZE) == 1
    assert pages_for(PAGE_SIZE + 1) == 2
    assert pages_for(0) == 1


def test_alloc_read_write(space):
    start = space.alloc(100, "buf")
    space.write(start, b"hello")
    assert space.read(start, 5) == b"hello"
    assert space.read(start + 5, 3) == b"\x00\x00\x00"


def test_alloc_is_page_aligned_and_accounted(space, accountant):
    before = accountant.in_use
    space.alloc(PAGE_SIZE * 2 + 1, "big")
    assert accountant.in_use == before + 3


def test_write_across_page_boundary(space):
    start = space.alloc(PAGE_SIZE * 2, "span")
    data = bytes(range(200)) * 30  # 6000 bytes, crosses the boundary
    space.write(start + 100, data)
    assert space.read(start + 100, len(data)) == data


def test_unmapped_access_rejected(space):
    space.alloc(100, "buf")
    with pytest.raises(InvalidArgument):
        space.read(10 * PAGE_SIZE + 5, 4)
    with pytest.raises(InvalidArgument):
        space.write(10 * PAGE_SIZE, b"x")


def test_free_releases_pages(space, accountant):
    space.alloc(PAGE_SIZE * 4, "tmp")
    used = accountant.in_use
    space.free("tmp")
    assert accountant.in_use == used - 4
    with pytest.raises(InvalidArgument):
        space.free("tmp")


def test_duplicate_region_rejected(space):
    space.alloc(10, "x")
    with pytest.raises(InvalidArgument):
        space.alloc(10, "x")


def test_object_store_roundtrip(space):
    space.store("session", {"user": "alice", "hits": 3})
    assert space.load("session") == {"user": "alice", "hits": 3}
    assert space.has("session")
    space.delete("session")
    assert not space.has("session")


def test_object_store_replaces_in_place_when_it_fits(space, accountant):
    space.store("k", b"small")
    used = accountant.in_use
    space.store("k", b"tiny")
    assert accountant.in_use == used  # reused the region
    assert space.load("k") == b"tiny"


def test_ram_budget_enforced():
    accountant = PageAccountant(capacity_pages=4)
    space = AddressSpace(accountant)
    space.alloc(PAGE_SIZE * 3, "a")
    with pytest.raises(ResourceExhausted):
        space.alloc(PAGE_SIZE * 2, "b")


def test_default_ram_is_256mb():
    # The prototype "currently only uses 256MB of RAM" (Section 9).
    assert DEFAULT_RAM_BYTES == 256 * 1024 * 1024


# -- event-process views -------------------------------------------------------------


@pytest.fixture
def base_and_view(accountant):
    base = AddressSpace(accountant)
    start = base.alloc(PAGE_SIZE * 2, "shared")
    base.write(start, b"base-data")
    view = EpView(base, accountant)
    return base, view, start


def test_reads_fall_through(base_and_view):
    base, view, start = base_and_view
    assert view.read(start, 9) == b"base-data"


def test_write_copies_page_not_base(base_and_view, accountant):
    base, view, start = base_and_view
    before = accountant.in_use
    view.write(start, b"EP-data!!")
    assert view.read(start, 9) == b"EP-data!!"
    assert base.read(start, 9) == b"base-data"       # base untouched
    assert accountant.in_use == before + 1           # one COW page
    assert view.private_page_count == 1


def test_second_write_to_same_page_is_free(base_and_view, accountant):
    base, view, start = base_and_view
    view.write(start, b"x")
    used = accountant.in_use
    view.write(start + 1, b"y")
    assert accountant.in_use == used


def test_clean_reverts_to_base(base_and_view, accountant):
    base, view, start = base_and_view
    view.write(start, b"EP-data!!")
    dropped = view.clean(start, 1)
    assert dropped == 1
    assert view.read(start, 9) == b"base-data"
    assert view.private_page_count == 0


def test_clean_region_and_clean_all_except(base_and_view):
    base, view, start = base_and_view
    view.write(start, b"dirty")
    view.alloc(PAGE_SIZE, "session")
    view.write(view.region("session").start, b"keep-me")
    view.alloc(PAGE_SIZE * 2, "scratch")
    view.write(view.region("scratch").start, b"temp")
    dropped = view.clean_all_except(("session",))
    assert dropped >= 2
    assert view.read(view.region("session").start, 7) == b"keep-me"
    assert view.region("scratch") is None
    assert view.read(start, 4) == b"base"


def test_ep_private_alloc_invisible_to_base(base_and_view):
    base, view, start = base_and_view
    addr = view.alloc(100, "own")
    view.write(addr, b"private")
    assert base.region("own") is None
    with pytest.raises(InvalidArgument):
        base.read(addr, 4)


def test_two_views_are_isolated(accountant):
    base = AddressSpace(accountant)
    start = base.alloc(PAGE_SIZE, "shared")
    base.write(start, b"base")
    view1 = EpView(base, accountant)
    view2 = EpView(base, accountant)
    view1.write(start, b"one!")
    view2.write(start, b"two!")
    assert view1.read(start, 4) == b"one!"
    assert view2.read(start, 4) == b"two!"
    # Private allocations may reuse the same addresses in different views.
    a1 = view1.alloc(10, "x")
    a2 = view2.alloc(10, "x")
    assert a1 == a2
    view1.write(a1, b"1")
    view2.write(a2, b"2")
    assert view1.read(a1, 1) == b"1"
    assert view2.read(a2, 1) == b"2"


def test_release_all(base_and_view, accountant):
    base, view, start = base_and_view
    view.write(start, b"x")
    view.alloc(PAGE_SIZE, "own")
    used_before_release = accountant.in_use
    view.release_all()
    assert view.private_page_count == 0
    assert accountant.in_use == used_before_release - 2


def test_ep_free_of_base_region_hides_it(base_and_view):
    base, view, start = base_and_view
    view.write(start, b"x")
    view.free("shared")
    assert view.region("shared") is None
    assert base.region("shared") is not None


@given(st.lists(st.tuples(st.integers(0, 7), st.binary(min_size=1, max_size=64)), max_size=40))
def test_cow_view_matches_shadow_model(writes):
    """Property: an EpView behaves exactly like a plain byte-array copy."""
    accountant = PageAccountant()
    base = AddressSpace(accountant)
    start = base.alloc(PAGE_SIZE * 8, "arena")
    base.write(start, b"\xaa" * (PAGE_SIZE * 8))
    view = EpView(base, accountant)
    shadow = bytearray(b"\xaa" * (PAGE_SIZE * 8))
    for page, data in writes:
        offset = page * PAGE_SIZE
        view.write(start + offset, data)
        shadow[offset : offset + len(data)] = data
    assert view.read(start, PAGE_SIZE * 8) == bytes(shadow)
    assert base.read(start, PAGE_SIZE * 8) == b"\xaa" * (PAGE_SIZE * 8)
