"""The hierarchical labeled filesystem (9P-flavoured walk/FID protocol,
per-directory label inheritance, clearance-filtered listings)."""

import pytest

from repro.core.labels import Label
from repro.core.levels import L0, L2, L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel import ChangeLabel, NewHandle
from repro.servers.filesystem import filesystem_body


@pytest.fixture
def fs(kernel):
    proc = kernel.spawn(filesystem_body, "fs9")
    kernel.run()
    return proc


def run_client(kernel, fs, script, name="client"):
    """Run script(ctx, chan, fs_port) in a process; returns the process."""

    def body(ctx):
        chan = yield from Channel.open()
        ctx.env["result"] = yield from script(ctx, chan, fs.env["fs9_port"])

    proc = kernel.spawn(body, name)
    kernel.run()
    return proc


def test_attach_create_walk_read(kernel, fs):
    def script(ctx, chan, port):
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(port, P.request("CREATE", fid=0, name="home", kind="dir"))
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["home"]))
        yield from chan.call(
            port, P.request("CREATE", fid=1, name="readme", kind="file", data=b"hi")
        )
        yield from chan.call(
            port, P.request("WALK", fid=0, newfid=2, names=["home", "readme"])
        )
        r = yield from chan.call(port, P.request(P.READ, fid=2))
        stat = yield from chan.call(port, P.request("STAT", fid=2))
        return (r.payload["data"], stat.payload["path"])

    proc = run_client(kernel, fs, script)
    assert proc.env["result"] == (b"hi", "/home/readme")


def test_walk_dotdot_and_missing(kernel, fs):
    def script(ctx, chan, port):
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(port, P.request("CREATE", fid=0, name="d", kind="dir"))
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["d", ".."]))
        stat = yield from chan.call(port, P.request("STAT", fid=1))
        missing = yield from chan.call(
            port, P.request("WALK", fid=0, newfid=2, names=["nope"])
        )
        return (stat.payload["path"], missing.payload)

    proc = run_client(kernel, fs, script)
    path, missing = proc.env["result"]
    assert path == "/"
    assert P.is_error(missing)


def test_directory_taint_inherited_by_children(kernel, fs):
    # A file with no taint of its own, inside u's tainted home directory,
    # still contaminates its readers with uT.
    def script(ctx, chan, port):
        uT = yield NewHandle()
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(
            port,
            P.request("CREATE", fid=0, name="u", kind="dir", taint=uT),
            decontaminate_send=Label({uT: STAR}, L3),
        )
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["u"]))
        yield from chan.call(
            port, P.request("CREATE", fid=1, name="diary", kind="file", data=b"dear diary")
        )
        # We created uT, so we hold ⋆ and can clear ourselves to read back.
        yield ChangeLabel(raise_receive={uT: L3})
        yield from chan.call(port, P.request("WALK", fid=0, newfid=2, names=["u", "diary"]))
        r = yield from chan.call(port, P.request(P.READ, fid=2))
        from repro.kernel import GetLabels

        send, _ = yield GetLabels()
        return (r.payload["data"], send(uT))

    proc = run_client(kernel, fs, script)
    data, taint_level = proc.env["result"]
    assert data == b"dear diary"
    assert taint_level == STAR  # ⋆ absorbed the contamination (Equation 5)


def test_uncleared_reader_never_sees_tainted_file(kernel, fs):
    state = {}

    def setup(ctx, chan, port):
        uT = yield NewHandle()
        state["uT"] = uT
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(
            port,
            P.request("CREATE", fid=0, name="u", kind="dir", taint=uT),
            decontaminate_send=Label({uT: STAR}, L3),
        )
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["u"]))
        yield from chan.call(
            port, P.request("CREATE", fid=1, name="secret", kind="file", data=b"x")
        )
        return "ok"

    run_client(kernel, fs, setup, name="owner")

    def snoop(ctx, chan, port):
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["u", "secret"]))
        # The READ_R reply carries uT 3; our receive label refuses it, so
        # this call never returns — record progress before trying.
        state["about_to_read"] = True
        yield from chan.call(port, P.request(P.READ, fid=1))
        state["leak"] = True
        return "leaked"

    run_client(kernel, fs, snoop, name="snoop")
    assert state.get("about_to_read") and "leak" not in state
    assert kernel.drop_log.count("label-check") >= 1


def test_listing_filtered_by_clearance(kernel, fs):
    state = {}

    def setup(ctx, chan, port):
        uT = yield NewHandle()
        state["uT"] = uT
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(port, P.request("CREATE", fid=0, name="public.txt", kind="file"))
        yield from chan.call(
            port,
            P.request("CREATE", fid=0, name="u-home", kind="dir", taint=uT),
            decontaminate_send=Label({uT: STAR}, L3),
        )
        return "ok"

    run_client(kernel, fs, setup, name="owner")

    def lister_unclassified(ctx, chan, port):
        yield from chan.call(port, P.request("ATTACH", fid=0))
        r = yield from chan.call(port, P.request(P.READ, fid=0))
        return [e["name"] for e in r.payload["entries"]]

    proc = run_client(kernel, fs, lister_unclassified, name="pleb")
    # The uncleared client sees only the public entry — u-home is absent,
    # not "permission denied" (existence is information).
    assert proc.env["result"] == ["public.txt"]

    def lister_cleared(ctx, chan, port):
        uT = state["uT"]
        # Cleared client: declares uT clearance in V and can accept the
        # contaminated reply... but clearance must be real: raising our
        # receive label requires ⋆, which we don't have.  Instead the
        # owner-style client (below) is spawned with fresh labels and the
        # proper decontamination flow is exercised in the inherited test
        # above; here we just verify the V-declaration path rejects liars:
        r = yield from chan.call(port, P.request("ATTACH", fid=0))
        return "ok"

    run_client(kernel, fs, lister_cleared, name="aux")


def test_cleared_lister_sees_everything(kernel, fs):
    results = {}

    def owner(ctx, chan, port):
        uT = yield NewHandle()
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(port, P.request("CREATE", fid=0, name="pub", kind="file"))
        yield from chan.call(
            port,
            P.request("CREATE", fid=0, name="priv", kind="dir", taint=uT),
            decontaminate_send=Label({uT: STAR}, L3),
        )
        yield ChangeLabel(raise_receive={uT: L3})
        r = yield from chan.call(
            port,
            P.request(P.READ, fid=0),
            verify=Label({uT: L3}, L2),   # declare clearance for uT
        )
        results["entries"] = sorted(e["name"] for e in r.payload["entries"])
        return "ok"

    run_client(kernel, fs, owner, name="owner")
    assert results["entries"] == ["priv", "pub"]


def test_write_and_remove_guarded_by_grant(kernel, fs):
    def owner(ctx, chan, port):
        uG = yield NewHandle()
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(
            port, P.request("CREATE", fid=0, name="guarded", kind="file",
                            grant=uG, data=b"v1")
        )
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["guarded"]))
        # Unproven write fails; proven write succeeds.
        r1 = yield from chan.call(port, P.request(P.WRITE, fid=1, data=b"bad"))
        r2 = yield from chan.call(
            port, P.request(P.WRITE, fid=1, data=b"v2"), verify=Label({uG: L0}, L3)
        )
        r3 = yield from chan.call(port, P.request(P.READ, fid=1))
        r4 = yield from chan.call(port, P.request("REMOVE", fid=1))
        r5 = yield from chan.call(
            port, P.request("WALK", fid=0, newfid=2, names=["guarded"])
        )
        # Remove also needs the grant; re-walk after a proven remove fails.
        yield from chan.call(port, P.request("WALK", fid=0, newfid=3, names=[]))
        return (r1.payload, r2.payload, r3.payload["data"], r4.payload, r5.payload)

    proc = run_client(kernel, fs, owner, name="owner")
    r1, r2, r3, r4, r5 = proc.env["result"]
    assert P.is_error(r1)
    assert r2["ok"] is True
    assert r3 == b"v2"
    assert P.is_error(r4)      # REMOVE without the verify label fails too
    assert not P.is_error(r5)  # file still there


def test_remove_with_grant_proof(kernel, fs):
    def owner(ctx, chan, port):
        uG = yield NewHandle()
        yield from chan.call(port, P.request("ATTACH", fid=0))
        yield from chan.call(
            port, P.request("CREATE", fid=0, name="f", kind="file", grant=uG)
        )
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["f"]))
        r = yield from chan.call(
            port, P.request("REMOVE", fid=1), verify=Label({uG: L0}, L3)
        )
        gone = yield from chan.call(port, P.request("WALK", fid=0, newfid=2, names=["f"]))
        return (r.payload, gone.payload)

    proc = run_client(kernel, fs, owner, name="owner")
    removed, gone = proc.env["result"]
    assert removed["ok"] is True
    assert P.is_error(gone)


def test_misc_errors(kernel, fs):
    def script(ctx, chan, port):
        yield from chan.call(port, P.request("ATTACH", fid=0))
        bad_fid = yield from chan.call(port, P.request(P.READ, fid=77))
        yield from chan.call(port, P.request("CREATE", fid=0, name="f", kind="file"))
        dup = yield from chan.call(port, P.request("CREATE", fid=0, name="f", kind="file"))
        yield from chan.call(port, P.request("WALK", fid=0, newfid=1, names=["f"]))
        create_in_file = yield from chan.call(
            port, P.request("CREATE", fid=1, name="x", kind="file")
        )
        write_dir = yield from chan.call(port, P.request(P.WRITE, fid=0, data=b"x"))
        rm_root = yield from chan.call(port, P.request("REMOVE", fid=0))
        clunk = yield from chan.call(port, P.request("CLUNK", fid=1))
        after = yield from chan.call(port, P.request(P.READ, fid=1))
        return [bad_fid.payload, dup.payload, create_in_file.payload,
                write_dir.payload, rm_root.payload, clunk.payload, after.payload]

    proc = run_client(kernel, fs, script)
    bad_fid, dup, cif, wdir, rmr, clunk, after = proc.env["result"]
    for r in (bad_fid, dup, cif, wdir, rmr, after):
        assert P.is_error(r)
    assert clunk["ok"] is True
