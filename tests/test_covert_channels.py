"""The Section 8 storage channels: both work as described, both require
processes per bit, and fork-rate limiting bounds the leak."""


from repro.covert import ForkRateLimiter, label_observation_channel, yield_order_channel
from repro.kernel.kernel import Kernel


def test_label_observation_channel_leaks():
    sent, received = label_observation_channel([1, 0, 1, 1, 0, 0, 1, 0])
    assert received == sent


def test_label_observation_channel_all_zeroes_and_ones():
    for bits in ([0, 0, 0], [1, 1, 1]):
        sent, received = label_observation_channel(bits)
        assert received == sent


def test_yield_order_channel_leaks():
    sent, received = yield_order_channel([0, 1, 1, 0, 1, 0, 0, 1])
    assert received == sent


def test_channels_cost_processes_per_bit():
    kernel = Kernel()
    label_observation_channel([1, 0, 1], kernel=kernel)
    # Orchestrator + A + C + 2 B-processes per bit.
    assert kernel._pid >= 3 + 2 * 3


def test_fork_limiter_bounds_the_leak():
    kernel = Kernel()
    limiter = ForkRateLimiter(budget=6)  # C + A + two Bs per bit
    kernel.fork_limiter = limiter
    sent, received = label_observation_channel([1, 0, 1, 1, 0], kernel=kernel)
    assert len(received) == 2           # only two bits escaped
    assert received == sent[:2]
    assert limiter.denied >= 1


def test_fork_limiter_zero_budget_blocks_everything():
    kernel = Kernel()
    kernel.fork_limiter = ForkRateLimiter(budget=2)  # C and A only
    sent, received = label_observation_channel([1, 1, 1], kernel=kernel)
    assert received == []


def test_fork_limiter_is_per_parent():
    limiter = ForkRateLimiter(budget=1)

    class FakeParent:
        def __init__(self, key):
            self.key = key

    assert limiter(FakeParent("a"))
    assert not limiter(FakeParent("a"))
    assert limiter(FakeParent("b"))
    assert limiter.denied == 1
