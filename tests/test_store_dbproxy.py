"""The store behind ok-dbproxy: live crash + supervised recovery, the
bit-identical in-memory default, the admin CHECKPOINT op, the bounded
write-dedup map, and shard-count-invariant recovery."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.core.chunks import ChunkedLabel
from repro.core.labels import Label
from repro.core.levels import L1, STAR
from repro.faults.plan import FaultPlan, FaultRule
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.servers.dbproxy import WriteDedupCache
from repro.sim.workload import HttpClient
from repro.store import crashcheck as CC
from repro.store import wal
from repro.store.store import image_digest, replay_image


def _responses(site):
    client = HttpClient(site)
    return [
        client.request(user, password, service, body, args)
        for user, password, service, body, args in CC.BOARD_REQUESTS
    ]


# -- the write-dedup LRU (satellite) ------------------------------------------------


def test_dedup_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        WriteDedupCache(0)


def test_dedup_cache_is_bounded_and_counts_evictions():
    cache = WriteDedupCache(3)
    for key in range(5):
        cache.put(key, f"v{key}")
    assert len(cache) == 3
    assert cache.evictions == 2
    # Oldest entries went first.
    assert 0 not in cache and 1 not in cache
    assert cache.get(2) == "v2"


def test_dedup_cache_get_refreshes_recency():
    cache = WriteDedupCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # touch: "b" is now the LRU entry
    cache.put("c", 3)
    assert "a" in cache and "b" not in cache


def test_dedup_cache_put_overwrites_in_place():
    cache = WriteDedupCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 9)
    assert cache.get("a") == 9
    assert len(cache) == 2 and cache.evictions == 0


# -- store-backed dbproxy ------------------------------------------------------------


def test_store_backed_site_logs_the_workload(tmp_path):
    path = str(tmp_path / "wal.log")
    site = CC.run_board_workload(path)
    assert site.launcher_env["recoveries"] == 0
    scanned = wal.scan_file(path)
    assert not scanned.torn
    writes = [r for r in scanned.records if r.type == "write"]
    declassed = [r for r in writes if r.payload["declass"]]
    assert len(declassed) == 1  # the publish
    assert declassed[0].payload["owner"] == 0
    private = [
        r
        for r in writes
        if r.payload["taint"] is not None and not r.payload["declass"]
    ]
    assert len(private) == 3  # the drafts carry their compartment taint
    assert all(r.payload["owner"] != 0 for r in private)


def test_crash_restart_recovers_committed_state(tmp_path):
    """Crash ok-dbproxy mid-workload: supervision restarts it, recovery
    replays the committed prefix, and data a client was acked for is
    still there afterwards."""
    path = str(tmp_path / "wal.log")
    # Append #16 is the commit of the second draft: the first draft's
    # transaction is already durable and acknowledged.
    plan = FaultPlan.of(
        FaultRule(
            kind="crash_at_io", id="t", match="ok-dbproxy", at_io=16, max_fires=1
        )
    )
    site = CC.run_board_workload(path, plan=plan)
    env = site.launcher_env
    assert env["recoveries"] == 1
    assert env["restart_state"]["ok-dbproxy"]["count"] == 1
    assert env["failed_services"] == []
    assert [r["service"] for r in env["restarts"]] == ["ok-dbproxy"]

    # alice's first draft was committed before the crash and published
    # after it; bob (who cannot see alice's private rows) sees it.
    client = HttpClient(site)
    read = client.request("bob", "builder", "board", None, {"op": "read"})
    published = {p["text"] for p in read.body if p["published"]}
    assert "first draft" in published
    # The recovered log closes cleanly.
    assert not wal.scan_file(path).torn


def test_restarted_proxy_accepts_writes_from_relogged_users(tmp_path):
    """After recovery, idd's REBIND restored the uid<->handle bindings:
    a user who logged in before the crash can keep writing."""
    path = str(tmp_path / "wal.log")
    plan = FaultPlan.of(
        FaultRule(
            kind="crash_at_io", id="t", match="ok-dbproxy", at_io=16, max_fires=1
        )
    )
    site = CC.run_board_workload(path, plan=plan)
    client = HttpClient(site)
    after = client.request(
        "alice", "wonderland", "board", "post-crash draft", {"op": "draft"}
    )
    assert after.ok
    drafts = client.request("alice", "wonderland", "board", None, {"op": "drafts"})
    assert "post-crash draft" in drafts.body


def test_store_runs_are_deterministic(tmp_path):
    """Same workload, fresh stores: byte-identical logs and identical
    simulated clocks — the property the replayable counterexamples rely
    on."""
    digests, clocks = [], []
    for run in ("a", "b"):
        path = str(tmp_path / f"wal-{run}.log")
        site = CC.run_board_workload(path)
        digests.append(image_digest(open(path, "rb").read()))
        clocks.append(site.kernel.clock.now)
    assert digests[0] == digests[1]
    assert clocks[0] == clocks[1]


def test_store_and_memory_paths_answer_identically(tmp_path):
    """store_path=None is the bit-identical default: the durable path
    must not change anything a client can observe."""
    with_store = CC.run_board_workload(str(tmp_path / "wal.log"))
    without = CC.run_board_workload(None)
    a = [r.payload for r in _responses(with_store)]
    b = [r.payload for r in _responses(without)]
    assert a == b


def test_memory_path_never_imports_the_store_package():
    """The import gate, checked in a fresh interpreter (this test process
    has long since imported repro.store)."""
    code = (
        "import sys\n"
        "from repro.store.crashcheck import run_board_workload\n"
        "for mod in [m for m in sys.modules if m.startswith('repro.store')]:\n"
        "    del sys.modules[mod]\n"
        "run_board_workload(None)\n"
        "assert not any(m.startswith('repro.store') for m in sys.modules), 'leak'\n"
        "print('gated')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=".",
    )
    assert proc.returncode == 0, proc.stderr
    assert "gated" in proc.stdout


def test_admin_checkpoint_op(tmp_path):
    path = str(tmp_path / "wal.log")
    site = CC.run_board_workload(path)
    dbproxy = next(
        p for p in site.kernel.processes.values() if p.name == "ok-dbproxy"
    )
    admin = dbproxy.env["admin_handle"]

    def body(ctx):
        chan = yield from Channel.open()
        reply = yield from chan.call(
            site.dbproxy_admin_port, P.request("CHECKPOINT")
        )
        ctx.env["result"] = reply.payload

    probe = site.kernel.spawn(body, "probe")
    # The admin port is gated on the admin handle; the test hands the
    # probe the launcher's privilege directly.
    probe.send_label = ChunkedLabel.from_label(Label({admin: STAR}, L1))
    site.kernel.run()
    assert probe.env["result"]["ok"] is True
    records = wal.scan_file(path).records
    assert records[-1].type == "checkpoint"
    # A reopen must come back through the snapshot.
    state = replay_image(open(path, "rb").read())
    assert state.report.checkpoints_used == 1
    assert "posts" in state.db.tables


# -- sharded recovery ---------------------------------------------------------------


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_recovery_is_shard_count_invariant(tmp_path, n_shards):
    """Per-shard stores: the union of recovered rows is a function of the
    workload alone, never of the shard count."""
    from repro.cluster import Cluster, ClusterConfig
    from repro.kernel.config import KernelConfig

    users = tuple((f"user{i}", f"pw{i}") for i in range(6))
    base = str(tmp_path / f"wal-{n_shards}.log")
    config = ClusterConfig(
        n_shards=n_shards,
        users=users,
        service="notes",
        schema=("CREATE TABLE notes (author TEXT, text TEXT)",),
        kernel=KernelConfig(store_path=base),
        # Stay under the per-shard worker pool: 5+ concurrent DB writes
        # degrade to 503 by design.
        concurrency=2,
    )
    requests = [
        (name, password, "notes", f"note from {name}", {"op": "add"})
        for name, password in users
    ]
    with Cluster(config) as cluster:
        result = cluster.run_batch(requests)
    # Success payloads carry no status code; errors carry 403/404/503.
    assert [(status, body) for _, status, body, _ in result.outcomes] == [
        (None, "added 1")
    ] * len(users)

    shard_paths = (
        [base]
        if n_shards == 1
        else [f"{base}.shard-{shard}" for shard in range(n_shards)]
    )
    recovered = []
    for shard_path in shard_paths:
        state = replay_image(open(shard_path, "rb").read())
        assert state.report.discarded_txs == 0
        assert not state.report.violations
        table = state.db.tables.get("notes")
        if table is not None:
            recovered.extend((r["author"], r["text"]) for r in table.rows)
    assert sorted(recovered) == sorted(
        (name, f"note from {name}") for name, _ in users
    )
