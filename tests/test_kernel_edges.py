"""Edge cases across the kernel surface: ep_clean addressing modes,
environment access from EPs, the Compute syscall, exit notifications,
fork limiting at the syscall boundary, and run-loop guards."""

import pytest

from repro.core.labels import Label
from repro.kernel import (
    Compute,
    EpCheckpoint,
    EpClean,
    EpYield,
    GetEnv,
    Kernel,
    KernelConfig,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)
from repro.kernel.clock import NETWORK, OTHER
from repro.kernel.errors import InvalidArgument, ResourceExhausted, SimulationError
from repro.kernel.memory import PAGE_SIZE


def open_port():
    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    return port


def spawn_realm(kernel, event_body, base_setup=None):
    def body(ctx):
        if base_setup is not None:
            base_setup(ctx)
        port = yield from open_port()
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)

    proc = kernel.spawn(body, "worker")
    kernel.run()
    return proc


def test_ep_clean_by_range(kernel):
    log = []

    def event_body(ectx, msg):
        start = ectx.mem.region("arena").start
        ectx.mem.write(start, b"dirty")
        ectx.mem.write(start + PAGE_SIZE, b"dirty2")
        dropped = yield EpClean(start=start, length=PAGE_SIZE)  # first page only
        log.append((dropped, ectx.mem.read(start, 5), ectx.mem.read(start + PAGE_SIZE, 6)))

    proc = spawn_realm(
        kernel, event_body, base_setup=lambda ctx: ctx.mem.alloc(2 * PAGE_SIZE, "arena")
    )
    # Initialise arena content in the base... it is zeroed by default.
    kernel.inject(proc.env["port"], "go")
    kernel.run()
    dropped, first, second = log[0]
    assert dropped == 1
    assert first == b"\x00" * 5          # reverted
    assert second == b"dirty2"           # untouched private page


def test_ep_clean_by_region_and_bad_args(kernel):
    log = []

    def event_body(ectx, msg):
        ectx.mem.alloc(PAGE_SIZE, "scratch")
        ectx.mem.write(ectx.mem.region("scratch").start, b"x")
        dropped = yield EpClean(region="scratch")
        log.append(dropped)
        try:
            yield EpClean()
        except InvalidArgument:
            log.append("bad-args")

    proc = spawn_realm(kernel, event_body)
    kernel.inject(proc.env["port"], "go")
    kernel.run()
    assert log == [1, "bad-args"]


def test_getenv_from_event_process(kernel):
    seen = []

    def event_body(ectx, msg):
        env = yield GetEnv()
        seen.append(env.get("flag"))
        return
        yield

    def body(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)

    proc = kernel.spawn(body, "worker", env={"flag": "inherited"})
    kernel.run()
    kernel.inject(proc.env["port"], "go")
    kernel.run()
    assert seen == ["inherited"]


def test_compute_syscall_charges_component(kernel):
    def prog(ctx):
        yield Compute(123_456)
        yield Compute(1_000, category=NETWORK)

    kernel.spawn(prog, "prog", component=OTHER)
    before_other = kernel.clock.by_category.get(OTHER, 0)
    kernel.run()
    assert kernel.clock.by_category[NETWORK] >= 1_000
    assert kernel.clock.by_category[OTHER] - before_other >= 123_456


def test_exit_notification_delivered(kernel):
    obituaries = []

    def supervisor(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        def child(cctx):
            yield NewPort()

        yield Spawn(child, name="short-lived", notify_exit=port)
        msg = yield Recv(port=port)
        obituaries.append(msg.payload)

    kernel.spawn(supervisor, "supervisor")
    kernel.run()
    assert obituaries[0]["type"] == "EXITED"
    assert obituaries[0]["name"] == "short-lived"
    assert obituaries[0]["crashed"] is False


def test_exit_notification_marks_crashes():
    kernel = Kernel(config=KernelConfig(trace=False))
    obituaries = []

    def supervisor(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())

        def child(cctx):
            yield NewPort()
            raise RuntimeError("boom")

        yield Spawn(child, name="crasher", notify_exit=port)
        msg = yield Recv(port=port)
        obituaries.append(msg.payload)

    kernel.spawn(supervisor, "supervisor")
    kernel.run()
    assert obituaries[0]["crashed"] is True


def test_spawn_syscall_respects_fork_limiter(kernel):
    from repro.covert import ForkRateLimiter

    kernel.fork_limiter = ForkRateLimiter(budget=1)
    results = []

    def parent(ctx):
        def child(cctx):
            yield NewPort()

        yield Spawn(child, name="one")
        try:
            yield Spawn(child, name="two")
        except ResourceExhausted:
            results.append("denied")

    kernel.spawn(parent, "parent")
    kernel.run()
    assert results == ["denied"]


def test_run_guard_against_livelock(kernel):
    def spinner(ctx):
        port = yield from open_port()
        while True:
            yield Send(port, "self")      # to self, forever
            yield Recv(port=port)

    kernel.spawn(spinner, "spinner")
    with pytest.raises(SimulationError):
        kernel.run(max_steps=100)


def test_double_checkpoint_rejected(kernel):
    def event_body(ectx, msg):
        return
        yield

    def body(ctx):
        yield EpCheckpoint(event_body)
        yield EpCheckpoint(event_body)   # never reached: base never runs

    proc = kernel.spawn(body, "worker")
    kernel.run()
    # The base is parked in the EP realm; the second checkpoint is dead
    # code by construction.  Attempting ep syscalls from a plain process
    # is a simulation error:
    def bad(ctx):
        yield EpYield()

    kernel.spawn(bad, "bad")
    with pytest.raises(SimulationError):
        kernel.run()


def test_msgq_region_returns_after_clean(kernel):
    sizes = []

    def event_body(ectx, msg):
        while True:
            sizes.append(ectx.mem.region("msgq") is not None)
            yield EpClean(keep=("session",))
            msg = yield EpYield()

    def body(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)

    proc = kernel.spawn(body, "worker")
    kernel.run()
    # First activation creates the EP; resume it twice via its own port...
    # it owns no port here, so send to the base port creates new EPs; use
    # three base messages and confirm each activation saw a msgq region.
    for _ in range(3):
        kernel.inject(proc.env["port"], "m")
    kernel.run()
    assert sizes == [True, True, True]
