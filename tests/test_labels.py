"""Unit and property tests for the Label lattice (paper Sections 5.1–5.3,
Figure 3)."""


import pytest
from hypothesis import given, strategies as st

from repro.core.labels import Label
from repro.core.levels import ALL_LEVELS, L0, L1, L2, L3, STAR


levels = st.sampled_from(ALL_LEVELS)
handles = st.integers(min_value=0, max_value=60)
labels = st.builds(
    Label,
    st.dictionaries(handles, levels, max_size=12),
    default=levels,
)


# -- basics ---------------------------------------------------------------------


def test_label_as_function():
    lab = Label({5: L3, 7: STAR}, default=L1)
    assert lab(5) == L3
    assert lab(7) == STAR
    assert lab(12345) == L1


def test_normalisation_drops_default_entries():
    assert Label({5: L1}, default=L1) == Label({}, default=L1)
    assert len(Label({5: L1, 6: L2}, default=L1)) == 1


def test_equality_and_hash_are_semantic():
    a = Label({5: L3, 9: L1}, default=L1)
    b = Label({5: L3}, default=L1)
    assert a == b
    assert hash(a) == hash(b)


def test_paper_figure_2_labels():
    # US = {uT 3, 1}; UTR = {uT 3, 2}; VS = {vT 3, 1}.
    uT, vT = 1, 2
    US = Label({uT: L3}, L1)
    VS = Label({vT: L3}, L1)
    UTR = Label({uT: L3}, L2)
    assert US <= UTR            # U can send to the terminal
    assert not VS <= UTR        # V cannot


def test_rejects_bad_levels_and_handles():
    with pytest.raises(ValueError):
        Label({1: 9}, default=L1)
    with pytest.raises(ValueError):
        Label({}, default=7)
    with pytest.raises(ValueError):
        Label({-1: L1}, default=L1)
    with pytest.raises(ValueError):
        Label({1 << 61: L1}, default=L1)


def test_constructors():
    assert Label.send_default().default == L1
    assert Label.receive_default().default == L2
    assert Label.bottom().default == STAR
    assert Label.top().default == L3


def test_with_entry_and_without():
    lab = Label({}, L1).with_entry(9, STAR)
    assert lab(9) == STAR
    assert lab.controls(9)
    assert not lab.without(9).controls(9)
    assert lab.without(9) == Label({}, L1)


def test_word_encoding_roundtrip():
    lab = Label({5: STAR, 9: L3, 100: L0}, default=L2)
    assert Label.from_words(lab.to_words()) == lab


def test_word_encoding_empty():
    with pytest.raises(ValueError):
        Label.from_words([])


def test_format_with_names():
    uT = 42
    lab = Label({uT: L3}, L1)
    assert lab.format({uT: "uT"}) == "{uT 3, 1}"


# -- lattice laws (property-based) ----------------------------------------------------


@given(labels, labels)
def test_lub_is_least_upper_bound(a, b):
    join = a | b
    assert a <= join and b <= join


@given(labels, labels, labels)
def test_lub_minimality(a, b, c):
    if a <= c and b <= c:
        assert (a | b) <= c


@given(labels, labels)
def test_glb_is_greatest_lower_bound(a, b):
    meet = a & b
    assert meet <= a and meet <= b


@given(labels, labels, labels)
def test_glb_maximality(a, b, c):
    if c <= a and c <= b:
        assert c <= (a & b)


@given(labels, labels)
def test_partial_order_antisymmetry(a, b):
    if a <= b and b <= a:
        assert a == b


@given(labels, labels, labels)
def test_partial_order_transitivity(a, b, c):
    if a <= b and b <= c:
        assert a <= c


@given(labels)
def test_partial_order_reflexive(a):
    assert a <= a


@given(labels, labels)
def test_lub_glb_commutative(a, b):
    assert a | b == b | a
    assert a & b == b & a


@given(labels, labels, labels)
def test_lub_glb_associative(a, b, c):
    assert (a | b) | c == a | (b | c)
    assert (a & b) & c == a & (b & c)


@given(labels, labels)
def test_absorption(a, b):
    assert a | (a & b) == a
    assert a & (a | b) == a


@given(labels)
def test_bottom_and_top_are_identities(a):
    assert a | Label.bottom() == a
    assert a & Label.top() == a


@given(labels)
def test_stars_definition(a):
    # L*(h) = * if L(h) = *, else 3 — checked pointwise over a window that
    # includes both explicit handles and unmentioned ones.
    s = a.stars()
    for h in list(dict(a.entries())) + [59, 60]:
        if a(h) == STAR:
            assert s(h) == STAR
        else:
            assert s(h) == L3


@given(labels)
def test_stars_idempotent(a):
    assert a.stars().stars() == a.stars()


@given(labels, labels)
def test_contamination_preserves_stars(qs, es):
    # Equation 5's purpose: QS's * entries survive contamination.
    result = qs | (es & qs.stars())
    for h in list(dict(qs.entries())):
        if qs(h) == STAR:
            assert result(h) == STAR


def test_comparison_with_non_label():
    lab = Label({}, L1)
    assert lab.__le__(42) is NotImplemented
    assert lab != 42
