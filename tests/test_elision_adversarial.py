"""Adversarial suite for proof-guided check elision: corrupted, stale and
wrong-topology proofs must be *detected* and the kernel must fail closed.

The verified-flow table trusts nothing in the document beyond what
content addressing pins (:mod:`repro.analysis.proofs`): a stub can only
hit when the live operand intern ids equal the proof's, and the claimed
effect cores are re-derived by the sanitizer on every stub key's first
use.  This suite attacks each layer:

* a forged label body (content hash mismatch) or dangling reference is
  rejected at load time;
* a *well-formed* document whose effect delta was swapped for a valid
  but wrong label passes the loader — and is caught by the sanitizer on
  the first elided use, quarantining the whole table (fail closed);
* a proof compiled for a different topology never corrupts anything: it
  can only miss, or hit on genuinely identical label values (which is
  sound by construction);
* the in-simulation invalidation hooks — a covered port's label being
  rewritten outside the assumed set, a covered port passed in a message
  — bump the epoch from inside the machine, after which no stub hits
  land and the full checked path takes over.
"""

import json
import os
import tempfile

import pytest

from repro.analysis.extract import TopologyRecorder
from repro.analysis.proofs import ProofError, _Pool, compile_proofs, load_proofs, write_proofs
from repro.analysis.sanitizer import SanitizerViolation
from repro.core.chunks import ChunkedLabel
from repro.core.interning import InternTable
from repro.core.labels import Label
from repro.core.levels import L1, L2, L3
from repro.kernel import NewPort, Recv, Send, SetPortLabel
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.runner import build_echo_site
from repro.sim.workload import HttpClient


def _requests(n_users):
    return [(f"u{i}", f"pw{i}", "echo", None, {"length": 11}) for i in range(n_users)]


def _compile_echo_proofs(n_users, warm_rounds=2, concurrency=4):
    site = build_echo_site(n_users, config=KernelConfig())
    client = HttpClient(site)
    requests = _requests(n_users)
    for _ in range(warm_rounds):
        client.run_batch(requests, concurrency=concurrency)
    recorder = TopologyRecorder(site.kernel)
    client.run_batch(requests, concurrency=concurrency)
    return compile_proofs(recorder.build(f"adversarial-{n_users}"))


def _run_elided(n_users, path, rounds=4, concurrency=4, **extra):
    config = KernelConfig(
        intern_labels=True,
        elide_checks=True,
        proof_path=path,
        labelop_cache_size=1 << 12,
        **extra,
    )
    site = build_echo_site(n_users, config=config)
    client = HttpClient(site)
    payloads = []
    for _ in range(rounds):
        payloads.extend(
            r.payload
            for r in client.run_batch(_requests(n_users), concurrency=concurrency)
        )
    return site.kernel, payloads


def _poison_ref(doc):
    """Add a valid-fingerprint but wrong label to the pool and return its
    reference — the forgery a malicious (or buggy) emitter could ship."""
    table = InternTable()
    pool = _Pool(table)
    poison = table.intern(ChunkedLabel.from_label(Label({9999: L3}, L1)))
    ref = pool.ref(poison)
    doc["labels"].update(pool.to_json())
    return ref


# -- load-time rejection ------------------------------------------------------------


def test_forged_label_body_is_rejected_at_load():
    doc = _compile_echo_proofs(3)
    fp, body = next(iter(doc["labels"].items()))
    tampered = json.loads(json.dumps(doc))
    # Flip the label's default without recomputing the fingerprint.
    tampered["labels"][fp] = dict(body, default=int(L2))
    with pytest.raises(ProofError):
        load_proofs(tampered)


def test_dangling_label_reference_is_rejected_at_load():
    doc = _compile_echo_proofs(3)
    tampered = json.loads(json.dumps(doc))
    assert tampered["delivers"], "expected at least one deliver stub"
    tampered["delivers"][0]["qr"] = "f" * 16
    with pytest.raises(ProofError):
        load_proofs(tampered)


def test_unknown_schema_is_rejected_at_load():
    doc = _compile_echo_proofs(3)
    with pytest.raises(ProofError):
        load_proofs(dict(doc, schema="proofs/v999"))


# -- corrupted effect deltas: caught on first use, fail closed ----------------------


def test_corrupted_effect_delta_quarantines_on_first_elided_use():
    doc = _compile_echo_proofs(6)
    ref = _poison_ref(doc)
    for record in doc["delivers"]:
        record["new_qs_core"] = ref
    with tempfile.TemporaryDirectory(prefix="repro-elide-adv-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        write_proofs(doc, path)
        kernel, payloads = _run_elided(
            6, path, sanitize=True, sanitize_strict=False
        )
    table = kernel.flow_table
    # The sanitizer replays the FIRST use of every stub key, so the very
    # first deliver-stub hit is flagged and the whole table quarantined:
    # one poisoned delivery, zero after it.
    assert kernel.sanitizer is not None
    assert kernel.sanitizer.violations != []
    assert table.quarantines == 1
    assert table.deliver_hits == 1
    assert table.valid is False
    assert any("sanitizer" in r for r in table.invalidation_reasons)
    # Fail closed: every connection still completed via the full path.
    assert len(payloads) == 6 * 4


def test_corrupted_effect_delta_raises_under_strict_sanitizer():
    doc = _compile_echo_proofs(6)
    ref = _poison_ref(doc)
    for record in doc["delivers"]:
        record["new_qs_core"] = ref
        record["new_qr_core"] = ref
    with tempfile.TemporaryDirectory(prefix="repro-elide-adv-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        write_proofs(doc, path)
        with pytest.raises(SanitizerViolation):
            _run_elided(6, path, sanitize=True, sanitize_strict=True)


# -- wrong-topology proofs can only miss (or hit soundly) ---------------------------


def test_wrong_topology_proofs_never_corrupt_the_replay():
    doc = _compile_echo_proofs(3)
    n_users = 7
    with tempfile.TemporaryDirectory(prefix="repro-elide-adv-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        write_proofs(doc, path)
        elided_kernel, elided_payloads = _run_elided(
            n_users, path, sanitize=True, sanitize_strict=True
        )
    site = build_echo_site(n_users, config=KernelConfig())
    client = HttpClient(site)
    plain_payloads = []
    for _ in range(4):
        plain_payloads.extend(
            r.payload for r in client.run_batch(_requests(n_users), concurrency=4)
        )
    assert elided_payloads == plain_payloads
    assert site.kernel.drop_log.records == elided_kernel.drop_log.records
    for key, task in site.kernel.tasks.items():
        other = elided_kernel.tasks[key]
        assert task.send_label.to_label() == other.send_label.to_label(), key
        assert task.receive_label.to_label() == other.receive_label.to_label(), key
    # Content addressing makes any hit that does land sound; the strict
    # sanitizer (which replayed every stub key's first use) agrees.
    assert elided_kernel.sanitizer.violations == []
    assert elided_kernel.flow_table.quarantines == 0


# -- stale proofs: epoch bump stops elision, full path takes over -------------------


def test_stale_proofs_stop_eliding_and_fail_closed():
    doc = _compile_echo_proofs(4)
    with tempfile.TemporaryDirectory(prefix="repro-elide-adv-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        write_proofs(doc, path)
        config = KernelConfig(
            intern_labels=True,
            elide_checks=True,
            proof_path=path,
            labelop_cache_size=1 << 12,
        )
        site = build_echo_site(4, config=config)
        table = site.kernel.flow_table
        site.kernel._proofs_invalidate("simulated staleness")
        # Boot bring-up may have hit send stubs already; the point is
        # that nothing elides *after* the proofs go stale.
        hits_at_staleness = table.deliver_hits + table.send_hits
        client = HttpClient(site)
        payloads = []
        for _ in range(3):
            payloads.extend(
                r.payload for r in client.run_batch(_requests(4), concurrency=4)
            )
    assert table.valid is False
    assert table.epoch == 1
    assert table.deliver_hits + table.send_hits == hits_at_staleness
    assert table.deliver_hits == 0  # no delivery ever elided
    assert len(payloads) == 12  # every connection served by the full path


# -- in-simulation invalidation hooks ----------------------------------------------


def _pingpong_scenario(kernel, n_messages, twist=None):
    """A server draining a labelled inbox; *twist* (if given) runs inside
    the server after the second message and may return True to signal
    the server gave its port away.  A helper process with its own port
    exists in every run (handle determinism), but only the passage twist
    ever messages it.  Returns (server, helper)."""

    def helper(ctx):
        hinbox = yield NewPort()
        yield SetPortLabel(hinbox, Label.top())
        ctx.env["inbox"] = hinbox
        got = []
        ctx.env["got"] = got
        msg = yield Recv(port=hinbox)
        moved = msg.payload["moved"]
        while True:
            m = yield Recv(port=moved)
            if m.payload == "stop":
                break
            got.append(m.payload)

    def server(ctx):
        inbox = yield NewPort()
        yield SetPortLabel(inbox, Label.top())
        ctx.env["inbox"] = inbox
        got = []
        ctx.env["got"] = got
        while True:
            msg = yield Recv(port=inbox)
            if msg.payload == "stop":
                break
            got.append(msg.payload)
            if twist is not None and len(got) == 2:
                moved_away = yield from twist(inbox, helper_proc)
                if moved_away:
                    return

    srv = kernel.spawn(server, "server")
    helper_proc = kernel.spawn(helper, "helper")
    kernel.run()

    def client(ctx):
        for i in range(n_messages):
            yield Send(srv.env["inbox"], f"m{i}")
        yield Send(srv.env["inbox"], "stop")

    kernel.spawn(client, "client")
    kernel.run()
    return srv, helper_proc


def _pingpong_proofs(n_messages):
    kernel = Kernel(config=KernelConfig())
    recorder = TopologyRecorder(kernel)
    _pingpong_scenario(kernel, n_messages)
    topology = recorder.build("pingpong")
    assert topology.validate() == []
    return compile_proofs(topology)


def _elided_pingpong(path, n_messages, twist=None):
    kernel = Kernel(
        config=KernelConfig(
            intern_labels=True, elide_checks=True, proof_path=path
        )
    )
    srv, helper = _pingpong_scenario(kernel, n_messages, twist=twist)
    return kernel, srv, helper


def test_pingpong_baseline_elides_without_invalidating():
    doc = _pingpong_proofs(8)
    with tempfile.TemporaryDirectory(prefix="repro-elide-adv-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        write_proofs(doc, path)
        kernel, srv, _ = _elided_pingpong(path, 8)
    table = kernel.flow_table
    assert srv.env["got"] == [f"m{i}" for i in range(8)]
    assert table.valid is True
    assert table.deliver_hits > 0
    assert table.invalidations == 0


def test_port_label_rewrite_outside_assumed_set_invalidates():
    doc = _pingpong_proofs(8)

    def rewrite(inbox, _helper):
        yield SetPortLabel(inbox, Label({50: L2}, L3))

    with tempfile.TemporaryDirectory(prefix="repro-elide-adv-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        write_proofs(doc, path)
        kernel, srv, _ = _elided_pingpong(path, 8, twist=rewrite)
    table = kernel.flow_table
    # The rewrite is a real in-simulation event on a covered port whose
    # new value the proofs never assumed: the hook must bump the epoch,
    # and every message must still arrive via the full checked path.
    assert srv.env["got"] == [f"m{i}" for i in range(8)]
    assert table.valid is False
    assert table.invalidations == 1
    assert any("set_port_label" in r for r in table.invalidation_reasons)
    assert table.quarantines == 0


def test_covered_port_passage_invalidates():
    doc = _pingpong_proofs(8)

    with tempfile.TemporaryDirectory(prefix="repro-elide-adv-") as scratch:
        path = os.path.join(scratch, "proofs.json")
        write_proofs(doc, path)
        kernel = Kernel(
            config=KernelConfig(
                intern_labels=True, elide_checks=True, proof_path=path
            )
        )
        def passage(inbox, helper):
            # Hand the covered inbox's receive rights to the helper; the
            # proofs assumed the server owned it forever.
            yield Send(helper.env["inbox"], {"moved": inbox}, transfer=(inbox,))
            return True

        srv, helper = _pingpong_scenario(kernel, 8, twist=passage)
    table = kernel.flow_table
    # The server saw the first two messages; after the passage the helper
    # drained the rest — nothing was lost, nothing was elided unsoundly.
    assert srv.env["got"] == ["m0", "m1"]
    assert helper.env["got"] == [f"m{i}" for i in range(2, 8)]
    assert table.valid is False
    assert table.invalidations == 1
    assert any("port passage" in r for r in table.invalidation_reasons)
    assert table.quarantines == 0
