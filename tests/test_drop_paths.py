"""Silent-drop bookkeeping: every DROP_* branch must destroy in-transit
receive rights (``_kill_transferred``), and exit obituaries must survive
even a drop-everything fault plan.

Returning transferred rights to the sender after a drop would hand it a
delivery-notification channel — exactly the covert channel the silent-
drop rule exists to close — so the rights die with the message on every
branch: label-check, port-label, dead-port, queue-limit (real and
squeezed), and injected drops.  The sender-side privilege check
(``decont-privilege``) happens *before* rights leave the sender, so that
branch must leave ownership untouched.
"""

from repro.core.labels import Label
from repro.core.levels import L1, L3, STAR
from repro.faults import FaultPlan, FaultRule
from repro.kernel import (
    Kernel,
    KernelConfig,
    NewHandle,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)
from repro.kernel.errors import (
    DROP_DECONT_PRIVILEGE,
    DROP_FAULT,
    DROP_PORT_LABEL,
    DROP_QUEUE_LIMIT,
)


def open_port():
    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    return port


def _parked_receiver(kernel, port_label=None):
    """Spawn a receiver that publishes a data port and parks forever on a
    control port, so queued data is never drained."""

    def receiver(ctx):
        data = yield NewPort()
        yield SetPortLabel(data, port_label if port_label is not None else Label.top())
        ctx.env["data"] = data
        ctrl = yield from open_port()
        yield Recv(port=ctrl)

    r = kernel.spawn(receiver, "receiver")
    kernel.run()
    return r


def test_injected_drop_kills_transferred_rights():
    plan = FaultPlan.of(FaultRule(kind="drop", id="d", match="sender", p=1.0))
    kernel = Kernel(config=KernelConfig(faults=plan, fault_seed=0))
    r = _parked_receiver(kernel)

    def sender(ctx):
        moved = yield from open_port()
        ctx.env["moved"] = moved
        yield Send(r.env["data"], {"moved": moved}, transfer=(moved,))

    s = kernel.spawn(sender, "sender")
    kernel.run()
    assert kernel.drop_log.count(DROP_FAULT) == 1
    assert s.env["moved"] not in kernel.ports


def test_real_queue_limit_kills_transferred_rights(kernel):
    r = _parked_receiver(kernel)
    kernel.ports[r.env["data"]].queue_limit = 1

    def sender(ctx):
        moved = yield from open_port()
        ctx.env["moved"] = moved
        yield Send(r.env["data"], "filler")                      # fills the queue
        yield Send(r.env["data"], {"moved": moved}, transfer=(moved,))

    s = kernel.spawn(sender, "sender")
    kernel.run()
    assert kernel.drop_log.count(DROP_QUEUE_LIMIT) == 1
    assert s.env["moved"] not in kernel.ports


def test_squeezed_queue_limit_kills_transferred_rights():
    plan = FaultPlan.of(FaultRule(kind="queue_limit", id="sq", match="sender", limit=1))
    kernel = Kernel(config=KernelConfig(faults=plan, fault_seed=0))
    r = _parked_receiver(kernel)

    def sender(ctx):
        moved = yield from open_port()
        ctx.env["moved"] = moved
        yield Send(r.env["data"], "filler")
        yield Send(r.env["data"], {"moved": moved}, transfer=(moved,))

    s = kernel.spawn(sender, "sender")
    kernel.run()
    assert kernel.drop_log.count(DROP_QUEUE_LIMIT) == 1
    assert kernel.faults.summary() == {"queue_limit": 1}
    assert s.env["moved"] not in kernel.ports


def test_port_label_drop_kills_transferred_rights(kernel):
    """Requirement (4) failure at delivery: DR ⋢ pR.  The sender has the
    star privilege needed to raise DR, but the receiver's port label
    (default 1) rejects the requested decontamination.  The check runs at
    delivery, so the receiver blocks on the data port itself."""

    def receiver(ctx):
        data = yield NewPort()
        yield SetPortLabel(data, Label({}, L1))
        ctx.env["data"] = data
        yield Recv(port=data)

    r = kernel.spawn(receiver, "receiver")
    kernel.run()

    def sender(ctx):
        h = yield NewHandle()  # grants PS(h) = ⋆
        moved = yield from open_port()
        ctx.env["moved"] = moved
        yield Send(
            r.env["data"],
            {"moved": moved},
            dr=Label({h: L3}, STAR),
            transfer=(moved,),
        )

    s = kernel.spawn(sender, "sender")
    kernel.run()
    assert kernel.drop_log.count(DROP_PORT_LABEL) == 1
    assert s.env["moved"] not in kernel.ports


def test_decont_privilege_drop_happens_before_transfer(kernel):
    """Requirement (2) failures are detected sender-side, *before* the
    rights leave the sender — so ownership must be retained (there is no
    in-transit message to die with)."""
    r = _parked_receiver(kernel)

    def minter(ctx):
        ctx.env["h"] = yield NewHandle()

    m = kernel.spawn(minter, "minter")
    kernel.run()

    def sender(ctx):
        moved = yield from open_port()
        ctx.env["moved"] = moved
        # DS below 3 at a handle we hold no ⋆ for: dropped at the send.
        yield Send(
            r.env["data"],
            {"moved": moved},
            ds=Label({m.env["h"]: 0}, L3),
            transfer=(moved,),
        )
        # Our receive rights survived the drop: polling is legal.
        yield Recv(port=moved, block=False)
        ctx.env["still_owner"] = True
        # Park (exiting would dissociate our ports and spoil the check).
        yield Recv(port=moved)

    s = kernel.spawn(sender, "sender")
    kernel.run()
    assert kernel.drop_log.count(DROP_DECONT_PRIVILEGE) == 1
    assert s.env["moved"] in kernel.ports
    assert s.env["still_owner"] is True


def test_obituaries_survive_a_drop_everything_plan():
    """Exit notifications are kernel machinery, not user IPC: supervision
    (the recovery path) must keep working under any fault plan."""
    plan = FaultPlan.of(FaultRule(kind="drop", id="all", match="*", p=1.0))
    kernel = Kernel(config=KernelConfig(faults=plan, fault_seed=0))
    obituaries = []

    def supervisor(ctx):
        port = yield from open_port()

        def clean(cctx):
            yield NewPort()

        def crasher(cctx):
            yield NewPort()
            raise RuntimeError("boom")

        yield Spawn(clean, name="clean", notify_exit=port)
        msg = yield Recv(port=port)
        obituaries.append(msg.payload)
        yield Spawn(crasher, name="crasher", notify_exit=port)
        msg = yield Recv(port=port)
        obituaries.append(msg.payload)

    kernel.spawn(supervisor, "supervisor")
    kernel.run()
    assert [o["type"] for o in obituaries] == ["EXITED", "EXITED"]
    assert [o["name"] for o in obituaries] == ["clean", "crasher"]
    assert [o["crashed"] for o in obituaries] == [False, True]
    # The plan ate nothing else: the supervisor never sent user IPC.
    assert kernel.drop_log.count(DROP_FAULT) == 0
