"""wire/v1 codec properties: round-trip, id-only resends, tamper rejection.

The cross-shard wire is the one place labels leave a kernel's process,
so the codec gets property-level coverage: any label (⋆-bearing ones
included — ``⋆`` has its own wire encoding) must survive
encode → decode onto a *different* intern table with its content
fingerprint intact, and a receiver must reject anything it cannot
verify rather than guess.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster.wire import (
    WIRE_SCHEMA,
    WireDecoder,
    WireEncoder,
    WireError,
)
from repro.core.chunks import ChunkedLabel
from repro.core.interning import InternTable, label_fingerprint
from repro.core.labels import Label
from repro.core.levels import ALL_LEVELS, STAR
from repro.kernel.config import KernelConfig

# ⋆ sampled at triple weight: star-bearing labels are the interesting
# case (decontamination rights crossing the wire).
star_biased = st.sampled_from(ALL_LEVELS + (STAR, STAR))
labels = st.builds(
    Label,
    st.dictionaries(st.integers(min_value=0, max_value=80), star_biased, max_size=25),
    star_biased,
)

payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def _codec_pair():
    """A sender/receiver pair with independent intern tables — the
    cross-process situation the codec exists for."""
    sender, receiver = InternTable(), InternTable()
    return WireEncoder(sender, src=0), WireDecoder(receiver)


def _chunked(label: Label) -> ChunkedLabel:
    return ChunkedLabel.from_label(label)


@given(es=labels, ds=labels, v=labels, dr=labels, payload=payloads)
def test_roundtrip_preserves_labels_and_payload(es, ds, v, dr, payload):
    encoder, decoder = _codec_pair()
    doc = encoder.encode(
        dst=1,
        port=4242,
        payload=payload,
        es=_chunked(es),
        ds=_chunked(ds),
        v=_chunked(v),
        dr=_chunked(dr),
        sender="prop",
    )
    message = decoder.decode(doc)
    assert message.port == 4242
    assert message.payload == payload
    for original, decoded in (
        (es, message.es),
        (ds, message.ds),
        (v, message.v),
        (dr, message.dr),
    ):
        reference = _chunked(original)
        assert decoded.default == reference.default
        assert dict(decoded.iter_entries()) == dict(reference.iter_entries())
        # Content fingerprints agree across the two tables — the id the
        # next (id-only) send of this label will use.
        assert decoder.table.fingerprint(decoded) == encoder.table.fingerprint(
            reference
        )


@given(label=labels)
def test_second_send_is_id_only_and_resolves(label):
    encoder, decoder = _codec_pair()
    chunked = _chunked(label)
    kwargs = dict(es=chunked, ds=chunked, v=chunked, dr=chunked)
    first = encoder.encode(dst=1, port=1, payload=None, **kwargs)
    second = encoder.encode(dst=1, port=1, payload=None, **kwargs)
    assert "entries" in first["labels"]["es"]
    assert set(second["labels"]["es"]) == {"fp"}  # id-only
    decoder.decode(first)
    message = decoder.decode(second)
    assert message.es.default == chunked.default
    assert dict(message.es.iter_entries()) == dict(chunked.iter_entries())
    # A different destination has seen nothing: full body again.
    other_dst = encoder.encode(dst=2, port=1, payload=None, **kwargs)
    assert "entries" in other_dst["labels"]["es"]


def _one_doc(label=None):
    encoder, _ = _codec_pair()
    chunked = _chunked(label if label is not None else Label({7: 3}, 1))
    return encoder.encode(
        dst=1, port=9, payload={"k": b"v"}, es=chunked, ds=chunked, v=chunked,
        dr=chunked,
    )


def test_unknown_id_only_reference_is_rejected():
    _, decoder = _codec_pair()
    doc = _one_doc()
    doc["labels"]["es"] = {"fp": doc["labels"]["es"]["fp"]}  # strip the body
    with pytest.raises(WireError, match="never-shipped"):
        decoder.decode(doc)


def test_tampered_body_is_rejected():
    _, decoder = _codec_pair()
    doc = _one_doc()
    doc["labels"]["es"]["entries"] = [[7, 1]]  # body no longer matches fp
    with pytest.raises(WireError):
        decoder.decode(doc)


def test_unknown_schema_and_malformed_documents_are_rejected():
    _, decoder = _codec_pair()
    with pytest.raises(WireError, match=WIRE_SCHEMA):
        decoder.decode({"schema": "wire/v2"})
    doc = _one_doc()
    del doc["labels"]
    with pytest.raises(WireError):
        decoder.decode(doc)
    doc = _one_doc()
    doc["labels"]["ds"] = "not-a-label"
    with pytest.raises(WireError):
        decoder.decode(doc)


def test_malformed_level_code_is_rejected():
    _, decoder = _codec_pair()
    doc = _one_doc()
    doc["labels"]["es"]["entries"] = [[7, 99]]  # no such wire level
    with pytest.raises(WireError, match="malformed"):
        decoder.decode(doc)


# -- the fingerprint layer (repro.core.interning) ----------------------------


def test_label_fingerprint_is_content_stable():
    entries = ((7, 3), (9, STAR))
    assert label_fingerprint(1, entries) == label_fingerprint(1, entries)
    assert label_fingerprint(1, entries) != label_fingerprint(2, entries)
    assert label_fingerprint(1, entries) != label_fingerprint(1, ((7, 3),))
    # Order-sensitive by design: tables always hash canonical chunk order.
    assert label_fingerprint(1, ((7, 3), (9, 1))) != label_fingerprint(
        1, ((9, 1), (7, 3))
    )


def test_from_wire_returns_the_canonical_instance():
    table = InternTable()
    label = table.intern(_chunked(Label({7: 3}, 1)))
    fp = table.fingerprint(label)
    assert table.from_wire(fp) is label
    rebuilt = table.from_wire(fp, label.default, tuple(label.iter_entries()))
    assert rebuilt is label
    with pytest.raises(KeyError):
        table.from_wire(fp ^ 1)


def test_interning_survives_sanitize_sample_config():
    # parse/validation of the sampling knob lives next to the codec's
    # users; pin the contract here.
    from repro.kernel.config import parse_sample

    assert parse_sample("64") == 64
    assert parse_sample("1/64") == 64
    assert parse_sample(" 1 / 8 ") == 8
    assert parse_sample("1") == 1
    for bad in ("0", "-3", "2/64", "x", "1/0"):
        with pytest.raises(ValueError):
            parse_sample(bad)
    with pytest.raises(ValueError):
        KernelConfig(sanitize_sample=0)
    assert KernelConfig.from_env({"REPRO_SANITIZE_SAMPLE": "1/64"}).sanitize_sample == 64
