"""Label policies persisting across reboots (paper Section 7.5: "With
database access, OKWS can extend its label-based security policy to one
that persists across system reboots").

Handles are per-boot (61-bit, unique since boot), but the database's
hidden user-ID column is stable.  On the next boot, idd mints *fresh*
taint/grant handles at login, ok-dbproxy re-binds them to the same user
IDs, and the stored rows come back under the new compartments — isolation
carries over even though every label in the system is new.
"""


from repro.okws import ServiceConfig, launch
from repro.okws.services import notes_handler, profile_declassifier_handler, profile_handler
from repro.sim.workload import HttpClient

USERS = [("alice", "pw-a"), ("bob", "pw-b")]
SCHEMA = [
    "CREATE TABLE notes (author TEXT, text TEXT)",
    "CREATE TABLE profiles (owner TEXT, bio TEXT)",
]
SERVICES = [
    ServiceConfig("notes", notes_handler),
    ServiceConfig("profile", profile_handler),
    ServiceConfig("publish", profile_declassifier_handler, declassifier=True),
]


def _dump_database(site):
    """Harness-side 'disk': extract every table's raw rows (including the
    hidden ownership column) from the running dbproxy process."""
    # The database object lives in the dbproxy process's generator frame;
    # the harness reads it the way a disk would be read at shutdown.
    dbproxy = next(p for p in site.kernel.processes.values() if p.name == "ok-dbproxy")
    frame = dbproxy.gen.gi_frame if dbproxy.gen else None
    db = frame.f_locals["db"] if frame else None
    assert db is not None, "dbproxy must be alive at shutdown"
    return {
        name: [dict(row) for row in table.rows] for name, table in db.tables.items()
    }


def _restore(site, dump):
    """Write the dumped rows into the new boot's database via the admin
    interface (BULK_INSERT preserves the ownership column)."""
    from repro.ipc import protocol as P
    from repro.ipc.rpc import Channel
    from repro.kernel.syscalls import Send

    def restorer(ctx):
        chan = yield from Channel.open()
        for table, rows in dump.items():
            if table == "users":
                continue  # the new boot seeded its own user table
            yield from chan.call(
                ctx.env["admin"], P.request("BULK_INSERT", table=table, rows=rows)
            )
        ctx.env["done"] = True

    # The restorer needs the admin capability; in a real system the boot
    # loader holds it.  Here the launcher's admin handle gates the port,
    # so restore through the launcher's own channel: spawn with inherited
    # labels from the launcher process.
    launcher = next(p for p in site.kernel.processes.values() if p.name == "launcher")
    proc = site.kernel.spawn(
        restorer,
        "restorer",
        env={"admin": site.dbproxy_admin_port},
        parent=launcher,
        inherit_labels=True,
    )
    site.kernel.run()
    assert proc.env.get("done")


def test_isolation_persists_across_reboot():
    # ---- boot 1: users store private data, alice declassifies her bio ----
    boot1 = launch(services=SERVICES, users=USERS, schema=SCHEMA)
    c1 = HttpClient(boot1)
    c1.request("alice", "pw-a", "notes", body="alice-1", args={"op": "add"})
    c1.request("bob", "pw-b", "notes", body="bob-1", args={"op": "add"})
    c1.request("alice", "pw-a", "profile", body="alice-bio", args={"op": "set"})
    c1.request("alice", "pw-a", "publish")
    disk = _dump_database(boot1)
    assert any(row.get("_user_id") for row in disk["notes"])  # ownership on disk

    # ---- boot 2: fresh kernel, fresh handles, restored disk ----
    from repro.kernel.config import KernelConfig
    from repro.kernel.kernel import Kernel

    boot2 = launch(
        kernel=Kernel(config=KernelConfig(boot_key=b"second-boot")),  # a reboot reseeds the cipher
        services=SERVICES,
        users=USERS,
        schema=SCHEMA,
    )
    _restore(boot2, disk)
    c2 = HttpClient(boot2)

    # Isolation carried over: each user sees exactly their old notes.
    assert c2.request("alice", "pw-a", "notes", args={"op": "list"}).body == ["alice-1"]
    assert c2.request("bob", "pw-b", "notes", args={"op": "list"}).body == ["bob-1"]
    # Declassified data stayed public.
    assert (
        c2.request("bob", "pw-b", "profile", args={"op": "get"}).body
        == {"alice": "alice-bio"}
    )
    # And the compartments really are fresh: no handle value survived.
    idd1 = {h for p in boot1.kernel.processes.values() if p.name == "idd"
            for h, _ in p.send_label.iter_entries()}
    idd2 = {h for p in boot2.kernel.processes.values() if p.name == "idd"
            for h, _ in p.send_label.iter_entries()}
    assert not (idd1 & idd2 - {0})


def test_restore_requires_admin_capability():
    boot1 = launch(services=SERVICES, users=USERS, schema=SCHEMA)
    c1 = HttpClient(boot1)
    c1.request("alice", "pw-a", "notes", body="secret", args={"op": "add"})
    disk = _dump_database(boot1)

    boot2 = launch(services=SERVICES, users=USERS, schema=SCHEMA)
    from repro.ipc import protocol as P
    from repro.ipc.rpc import Channel

    def rogue_restorer(ctx):
        chan = yield from Channel.open()
        # No admin handle: the BULK_INSERT must never arrive.
        from repro.kernel.syscalls import Send

        yield Send(
            boot2.dbproxy_admin_port,
            dict(P.request("BULK_INSERT", table="notes", rows=disk["notes"]),
                 reply=chan.port),
        )
        ctx.env["sent"] = True

    before = boot2.kernel.drop_log.count("label-check")
    boot2.kernel.spawn(rogue_restorer, "rogue")
    boot2.kernel.run()
    assert boot2.kernel.drop_log.count("label-check") == before + 1
    c2 = HttpClient(boot2)
    assert c2.request("alice", "pw-a", "notes", args={"op": "list"}).body == []
