"""Kernel IPC basics: ports, messaging, blocking receive, environment
bootstrap, process lifecycle (paper Section 4)."""

import pytest

from repro.core.labels import Label
from repro.kernel import (
    DissociatePort,
    Exit,
    GetEnv,
    Kernel,
    KernelConfig,
    NewPort,
    Recv,
    Send,
    SetPortLabel,
    Spawn,
)
from repro.kernel.errors import NotOwner, SimulationError
from repro.kernel.process import TaskState


def open_port():
    """Sub-generator: create a port anyone may send to."""
    port = yield NewPort()
    yield SetPortLabel(port, Label.top())
    return port


def test_basic_send_recv(kernel):
    log = []

    def server(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        msg = yield Recv(port=port)
        log.append(msg.payload)

    srv = kernel.spawn(server, "server")
    kernel.run()

    def client(ctx):
        yield Send(ctx.env["target"], {"n": 42})

    kernel.spawn(client, "client", env={"target": srv.env["port"]})
    kernel.run()
    assert log == [{"n": 42}]


def test_fifo_delivery_order(kernel):
    received = []

    def server(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        for _ in range(5):
            msg = yield Recv(port=port)
            received.append(msg.payload)

    srv = kernel.spawn(server, "server")
    kernel.run()

    def client(ctx):
        for i in range(5):
            yield Send(ctx.env["t"], i)

    kernel.spawn(client, "client", env={"t": srv.env["port"]})
    kernel.run()
    assert received == [0, 1, 2, 3, 4]


def test_recv_any_port_global_order(kernel):
    received = []

    def server(ctx):
        a = yield from open_port()
        b = yield from open_port()
        ctx.env["a"], ctx.env["b"] = a, b
        for _ in range(4):
            msg = yield Recv()
            received.append((msg.port, msg.payload))

    srv = kernel.spawn(server, "server")
    kernel.run()

    def client(ctx):
        yield Send(ctx.env["b"], 1)
        yield Send(ctx.env["a"], 2)
        yield Send(ctx.env["b"], 3)
        yield Send(ctx.env["a"], 4)

    kernel.spawn(client, "client", env={"a": srv.env["a"], "b": srv.env["b"]})
    kernel.run()
    assert [payload for _, payload in received] == [1, 2, 3, 4]
    assert received[0][0] == srv.env["b"]


def test_nonblocking_recv_returns_none(kernel):
    results = []

    def prog(ctx):
        port = yield from open_port()
        msg = yield Recv(port=port, block=False)
        results.append(msg)

    kernel.spawn(prog, "prog")
    kernel.run()
    assert results == [None]


def test_blocking_recv_blocks(kernel):
    def prog(ctx):
        port = yield from open_port()
        yield Recv(port=port)

    proc = kernel.spawn(prog, "prog")
    kernel.run()
    assert proc.state == TaskState.BLOCKED


def test_recv_on_unowned_port_raises(kernel):
    caught = []

    def a(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        yield Recv(port=port)

    pa = kernel.spawn(a, "a")
    kernel.run()

    def b(ctx):
        try:
            yield Recv(port=ctx.env["other"])
        except NotOwner as err:
            caught.append(err)

    kernel.spawn(b, "b", env={"other": pa.env["port"]})
    kernel.run()
    assert len(caught) == 1


def test_send_to_unknown_port_is_silent(kernel):
    results = []

    def prog(ctx):
        ok = yield Send(123456789, {"x": 1})
        results.append(ok)

    kernel.spawn(prog, "prog")
    kernel.run()
    # Unreliable send: success is reported even though nothing exists.
    assert results == [True]
    assert kernel.drop_log.count("dead-port") == 1


def test_send_to_dissociated_port_is_silent(kernel):
    def server(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        yield DissociatePort(port)

    srv = kernel.spawn(server, "server")
    kernel.run()

    def client(ctx):
        ok = yield Send(ctx.env["t"], "hello")
        assert ok is True

    kernel.spawn(client, "client", env={"t": srv.env["port"]})
    kernel.run()
    assert kernel.drop_log.count("dead-port") == 1


def test_dissociate_requires_ownership(kernel):
    caught = []

    def a(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        yield Recv(port=port)

    pa = kernel.spawn(a, "a")
    kernel.run()

    def b(ctx):
        try:
            yield DissociatePort(ctx.env["p"])
        except NotOwner:
            caught.append(True)

    kernel.spawn(b, "b", env={"p": pa.env["port"]})
    kernel.run()
    assert caught == [True]


def test_port_names_are_unpredictable_handles(kernel):
    ports = []

    def prog(ctx):
        for _ in range(20):
            ports.append((yield NewPort()))

    kernel.spawn(prog, "prog")
    kernel.run()
    assert len(set(ports)) == 20
    assert ports != sorted(ports)  # not sequential


def test_env_bootstrap(kernel):
    seen = {}

    def child(ctx):
        env = yield GetEnv()
        seen.update(env)

    def parent(ctx):
        yield Spawn(child, name="child", env={"service_port": 99})

    kernel.spawn(parent, "parent")
    kernel.run()
    assert seen["service_port"] == 99


def test_exit_frees_resources(kernel):
    def prog(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        ctx.mem.alloc(4096, "data")
        yield Exit()

    before = kernel.accountant.in_use
    proc = kernel.spawn(prog, "prog")
    kernel.run()
    assert proc.state == TaskState.EXITED
    assert kernel.accountant.in_use == before  # stack + data all released
    assert proc.env["port"] not in kernel.ports


def test_crashing_process_is_reaped():
    kernel = Kernel(config=KernelConfig(trace=False))  # trace=True would re-raise

    def prog(ctx):
        yield NewPort()
        raise RuntimeError("boom")

    proc = kernel.spawn(prog, "prog")
    kernel.run()
    assert proc.state == TaskState.EXITED


def test_non_generator_body_rejected(kernel):
    def not_a_generator(ctx):
        return 42

    with pytest.raises(SimulationError):
        kernel.spawn(not_a_generator, "bad")


def test_yielding_garbage_is_a_simulation_error(kernel):
    def prog(ctx):
        yield "not-a-syscall"

    kernel.spawn(prog, "prog")
    with pytest.raises(SimulationError):
        kernel.run()


def test_queue_limit_drops(kernel):
    def server(ctx):
        port = yield from open_port()
        ctx.env["port"] = port
        yield Recv(port=(yield from open_port()))  # block forever elsewhere

    srv = kernel.spawn(server, "server")
    kernel.run()

    def flooder(ctx):
        for i in range(2000):
            yield Send(ctx.env["t"], i)

    kernel.spawn(flooder, "flooder", env={"t": srv.env["port"]})
    kernel.run()
    assert kernel.drop_log.count("queue-limit") > 0


def test_deterministic_replay():
    def run_once():
        kernel = Kernel()
        log = []

        def server(ctx):
            port = yield from open_port()
            ctx.env["port"] = port
            for _ in range(3):
                msg = yield Recv(port=port)
                log.append(msg.payload)
                yield Send(msg.payload["reply"], msg.payload["n"] * 2)

        srv = kernel.spawn(server, "server")
        kernel.run()

        def client(ctx):
            reply = yield from open_port()
            for n in range(3):
                yield Send(ctx.env["t"], {"n": n, "reply": reply})
                yield Recv(port=reply)

        kernel.spawn(client, "client", env={"t": srv.env["port"]})
        kernel.run()
        return log, kernel.clock.now, kernel.steps_executed

    assert run_once() == run_once()
