"""Unit tests for the 61-bit handle namespace (paper Sections 5.1, 8)."""

import pytest

from repro.core.handles import (
    HANDLE_BITS,
    HANDLE_SPACE,
    HandleAllocator,
    feistel_decrypt,
    feistel_encrypt,
)


def test_handles_are_61_bit():
    allocator = HandleAllocator()
    for _ in range(200):
        handle = allocator.fresh()
        assert 0 <= handle < HANDLE_SPACE
    assert HANDLE_BITS == 61


def test_handles_never_repeat():
    allocator = HandleAllocator()
    seen = {allocator.fresh() for _ in range(5000)}
    assert len(seen) == 5000


def test_cipher_is_a_bijection_on_samples():
    key = b"some-key"
    # Structured and random block values all round-trip.
    samples = list(range(100)) + [HANDLE_SPACE - 1, HANDLE_SPACE // 2, 0x1234567890ABCDE]
    for block in samples:
        assert feistel_decrypt(feistel_encrypt(block, key), key) == block


def test_cipher_rejects_out_of_range():
    with pytest.raises(ValueError):
        feistel_encrypt(HANDLE_SPACE, b"k")
    with pytest.raises(ValueError):
        feistel_decrypt(-1, b"k")


def test_sequence_looks_unpredictable():
    # The covert-channel argument (Section 8): consecutive handles must
    # not reveal the counter.  Weak but meaningful check: consecutive
    # outputs differ in many bits and are not monotonic.
    allocator = HandleAllocator()
    values = [allocator.fresh() for _ in range(100)]
    assert values != sorted(values)
    diffs = [bin(a ^ b).count("1") for a, b in zip(values, values[1:])]
    assert sum(diffs) / len(diffs) > 15  # ~30 expected for random 61-bit


def test_different_boots_differ():
    a = HandleAllocator(key=b"boot-1")
    b = HandleAllocator(key=b"boot-2")
    assert [a.fresh() for _ in range(10)] != [b.fresh() for _ in range(10)]


def test_same_boot_is_deterministic():
    a = HandleAllocator(key=b"boot")
    b = HandleAllocator(key=b"boot")
    assert [a.fresh() for _ in range(10)] == [b.fresh() for _ in range(10)]


def test_allocated_counter():
    allocator = HandleAllocator()
    assert allocator.allocated == 0
    allocator.fresh()
    allocator.fresh()
    assert allocator.allocated == 2
