"""Baseline model tests: Figure 8's latency table and Figure 7's
throughput plateaus for Apache+CGI and Mod-Apache."""

import pytest

from repro.baselines import ApacheCgiModel, ModApacheModel
from repro.sim.stats import percentile, summarize


@pytest.fixture(scope="module")
def apache4():
    return ApacheCgiModel().run(2000, concurrency=4)


@pytest.fixture(scope="module")
def mod4():
    return ModApacheModel().run(2000, concurrency=4)


def test_mod_apache_latency_matches_figure8(mod4):
    # Paper: median 999 µs, 90th percentile 1,015 µs.
    median = percentile(mod4.latencies_us, 50)
    p90 = percentile(mod4.latencies_us, 90)
    assert 900 <= median <= 1100
    assert 920 <= p90 <= 1150
    assert p90 / median < 1.1    # in-process handlers are near-deterministic


def test_apache_cgi_latency_matches_figure8(apache4):
    # Paper: median 3,374 µs, 90th percentile 5,262 µs.
    median = percentile(apache4.latencies_us, 50)
    p90 = percentile(apache4.latencies_us, 90)
    assert 3000 <= median <= 3900
    assert 4300 <= p90 <= 6200
    assert p90 / median > 1.3    # fork+exec makes CGI long-tailed


def test_relative_ordering(apache4, mod4):
    # Mod-Apache responds "with three to five times" lower latency.
    ratio = percentile(apache4.latencies_us, 50) / percentile(mod4.latencies_us, 50)
    assert 3.0 <= ratio <= 5.0


def test_throughput_plateaus():
    cgi = ApacheCgiModel().run(4000, concurrency=400)
    mod = ModApacheModel().run(4000, concurrency=16)
    # Paper Figure 7: Apache ~1,000 conn/s; Mod-Apache ~3,000-4,000.
    assert 900 <= cgi.throughput <= 1300
    assert 2800 <= mod.throughput <= 4500
    assert mod.throughput > 2.5 * cgi.throughput


def test_concurrency_increases_latency_not_throughput():
    low = ModApacheModel().run(1000, concurrency=1)
    high = ModApacheModel().run(1000, concurrency=16)
    assert percentile(high.latencies_us, 50) > percentile(low.latencies_us, 50)
    assert high.throughput >= low.throughput * 0.9


def test_deterministic_given_seed():
    a = ApacheCgiModel(seed=7).run(500, concurrency=4)
    b = ApacheCgiModel(seed=7).run(500, concurrency=4)
    assert a.latencies_us == b.latencies_us


def test_invalid_args_rejected():
    with pytest.raises(ValueError):
        ModApacheModel().run(0, concurrency=4)
    with pytest.raises(ValueError):
        ModApacheModel().run(10, concurrency=0)


# -- stats helpers ------------------------------------------------------------------


def test_percentile_basics():
    values = list(range(1, 101))
    assert percentile(values, 50) == 50.5
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 100
    assert percentile([7], 90) == 7


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 150)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["median"] == 2.5
    assert s["mean"] == 2.5
    assert s["min"] == 1.0 and s["max"] == 4.0
