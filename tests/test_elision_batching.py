"""Property tests for batched delivery under proof-guided elision.

Batching is purely an amortization: consecutive queued messages whose
(port, label-operand ids, epoch) signature is unchanged reuse the
previous probe's plans and stub instead of re-probing (DESIGN.md §15).
It must be *observationally invisible* — these tests pin that a batched
drain of N same-label-key messages is identical to N single deliveries
in delivery order, drop reasons, final labels, per-message billing (the
simulated clock, cycle for cycle) and stub-hit accounting, and that an
invalidation arriving mid-batch splits the batch and stops elision
without losing a message.
"""

import contextlib
import os
import tempfile

from repro.analysis.extract import TopologyRecorder
from repro.core.interning import global_intern_table
from repro.analysis.proofs import compile_proofs, write_proofs
from repro.kernel.config import KernelConfig
from repro.sim.runner import build_echo_site
from repro.sim.workload import HttpClient

N_USERS = 12
CONCURRENCY = 8
ROUNDS = 4


def _requests():
    return [
        (f"u{i}", f"pw{i}", "echo", None, {"length": 11}) for i in range(N_USERS)
    ]


def _proofs_path(scratch):
    site = build_echo_site(N_USERS, config=KernelConfig())
    client = HttpClient(site)
    for _ in range(2):
        client.run_batch(_requests(), concurrency=CONCURRENCY)
    recorder = TopologyRecorder(site.kernel)
    client.run_batch(_requests(), concurrency=CONCURRENCY)
    doc = compile_proofs(recorder.build("batching"))
    path = os.path.join(scratch, "proofs.json")
    write_proofs(doc, path)
    return path


def _run(path, tweak=None):
    """An elided replay; *tweak* (if given) gets the kernel after boot,
    before the workload — e.g. to disable or split batching."""
    config = KernelConfig(
        intern_labels=True,
        elide_checks=True,
        proof_path=path,
        labelop_cache_size=1 << 12,
    )
    site = build_echo_site(N_USERS, config=config)
    if tweak is not None:
        tweak(site.kernel)
    client = HttpClient(site)
    payloads = []
    for _ in range(ROUNDS):
        payloads.extend(
            r.payload
            for r in client.run_batch(_requests(), concurrency=CONCURRENCY)
        )
    return site.kernel, payloads


@contextlib.contextmanager
def _pinned_interning():
    """Hold a strong reference to every label interned while active.

    The process-wide intern table is weak: a label with no strong refs is
    collected and re-interning the same value issues a fresh id.  Which
    labels stay alive is a host-side allocation question — and batching
    changes it, because streak continuations skip plan recomputation and
    let plan intermediates die that the single-delivery twin keeps warm.
    The reborn ids then re-miss the id-keyed labelop cache, skewing the
    simulated clock by a handful of cache misses that have nothing to do
    with per-message delivery billing.  Pinning makes intern ids a pure
    function of label values for the duration, so the two twins see
    identical cache-key sequences and their clocks compare cycle for
    cycle.
    """
    table = global_intern_table()
    orig = table.intern
    pins = []

    def pin(label):
        result = orig(label)
        pins.append(result)
        return result

    table.intern = pin
    try:
        yield
    finally:
        del table.intern


def _unbatch(kernel):
    """Force every probe down the single-delivery path by clearing the
    batch signature before each call — N singles instead of one drain."""
    table = kernel.flow_table
    orig = table.plan_deliver

    def single(*args):
        table._last_sig = None
        return orig(*args)

    table.plan_deliver = single


def _assert_observationally_identical(a_kernel, a_payloads, b_kernel, b_payloads):
    assert a_payloads == b_payloads
    assert a_kernel.drop_log.records == b_kernel.drop_log.records
    for key, task in a_kernel.tasks.items():
        other = b_kernel.tasks[key]
        assert task.send_label.to_label() == other.send_label.to_label(), key
        assert task.receive_label.to_label() == other.receive_label.to_label(), key


def test_batched_drain_is_identical_to_n_singles():
    with tempfile.TemporaryDirectory(prefix="repro-elide-batch-") as scratch:
        path = _proofs_path(scratch)
        with _pinned_interning():
            batched_kernel, batched_payloads = _run(path)
            single_kernel, single_payloads = _run(path, tweak=_unbatch)
    batched = batched_kernel.flow_table
    single = single_kernel.flow_table
    # The workload really did drain batches, and the unbatched twin did not.
    assert batched.batch_drains > 0
    assert batched.batched_messages > batched.batch_drains
    assert single.batch_drains == 0 and single.batched_messages == 0
    # Observationally identical: order, drops, labels...
    _assert_observationally_identical(
        batched_kernel, batched_payloads, single_kernel, single_payloads
    )
    # ...stub accounting (every batched message was still billed as a
    # hit, one by one)...
    assert batched.deliver_hits == single.deliver_hits
    assert batched.send_hits == single.send_hits
    assert batched.ops_elided == single.ops_elided
    # ...and per-message cycles: the simulated clock agrees cycle for
    # cycle, per category.  Batching amortizes host-side probe work only.
    assert batched_kernel.clock.now == single_kernel.clock.now
    assert dict(batched_kernel.clock.by_category) == dict(
        single_kernel.clock.by_category
    )


def test_mid_batch_invalidation_splits_the_batch_and_falls_back():
    split_after = 40

    def split(kernel):
        table = kernel.flow_table
        orig = table.plan_deliver
        calls = {"n": 0}

        def hook(*args):
            calls["n"] += 1
            if calls["n"] == split_after:
                table.invalidate("mid-batch test event")
            return orig(*args)

        table.plan_deliver = hook

    with tempfile.TemporaryDirectory(prefix="repro-elide-batch-") as scratch:
        path = _proofs_path(scratch)
        split_kernel, split_payloads = _run(path, tweak=split)
    plain_site = build_echo_site(N_USERS, config=KernelConfig())
    plain_client = HttpClient(plain_site)
    plain_payloads = []
    for _ in range(ROUNDS):
        plain_payloads.extend(
            r.payload
            for r in plain_client.run_batch(_requests(), concurrency=CONCURRENCY)
        )
    table = split_kernel.flow_table
    # The invalidation split the stream: whatever was elided before it
    # stays elided, everything after takes the full checked path — and
    # the result is still bit-identical to the never-elided kernel.
    assert table.valid is False
    assert table.invalidations == 1
    _assert_observationally_identical(
        split_kernel, split_payloads, plain_site.kernel, plain_payloads
    )


def test_streak_counters_and_epoch_split_at_the_table_level():
    """Drive the streak machinery directly with live operands captured
    from a real run: N identical probes form one drain, the counters add
    up, and an epoch bump ends the streak immediately."""
    captured = []

    def capture(kernel):
        table = kernel.flow_table
        orig = table.plan_deliver

        def hook(*args):
            hit = orig(*args)
            if hit is not None:
                captured.append(args)
            return hit

        table.plan_deliver = hook

    with tempfile.TemporaryDirectory(prefix="repro-elide-batch-") as scratch:
        path = _proofs_path(scratch)
        kernel, _ = _run(path, tweak=capture)
    table = kernel.flow_table
    assert captured, "expected at least one live deliver-stub hit"
    args = captured[-1]

    table._last_sig = None  # start a fresh streak
    drains0 = table.batch_drains
    batched0 = table.batched_messages
    hits0 = table.deliver_hits
    first = table.plan_deliver(*args)
    assert first is not None and first.batched is False
    rest = [table.plan_deliver(*args) for _ in range(4)]
    assert all(h is not None and h.batched for h in rest)
    # One drain of five messages: probe one opened it, the second probe
    # retroactively counts both, the rest count one each.
    assert table.batch_drains == drains0 + 1
    assert table.batched_messages == batched0 + 5
    assert table.deliver_hits == hits0 + 5
    # Every reuse returns the very same applied labels as the probe.
    for hit in rest:
        assert hit.new_qs is first.new_qs
        assert hit.new_qr is first.new_qr
        assert hit.first_use is False
    # An invalidation mid-streak ends it: the same operands no longer hit.
    table.invalidate("epoch split")
    assert table.plan_deliver(*args) is None
    assert table.deliver_hits == hits0 + 5
