"""The unified CLI surface: shared options, exit codes, legacy aliases."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import build_parser, main

SUBCOMMANDS = ("tour", "analyze", "check", "explore", "run", "chaos", "bench")


@pytest.mark.parametrize("command", SUBCOMMANDS)
def test_every_subcommand_accepts_the_common_options(command):
    parser = build_parser()
    extra = ["--plan", "p.json"] if command == "chaos" else []
    args = parser.parse_args(
        [command, *extra, "--format", "json", "--out", "somewhere", "--seed", "7"]
    )
    assert args.format == "json"
    assert args.out == "somewhere"
    assert args.seed == 7


def test_out_default_is_none_everywhere():
    # parents=[common] shares action objects between subparsers: a
    # subparser-level set_defaults would leak its default into every
    # command (bench's "." would become analyze's output file).
    parser = build_parser()
    for command in ("analyze", "bench", "explore"):
        assert parser.parse_args([command]).out is None


@pytest.mark.parametrize("command", ["run", "chaos", "bench"])
def test_sarif_is_a_usage_error_outside_the_analysis_commands(command):
    extra = ["--plan", "nonexistent.json"] if command == "chaos" else []
    assert main([command, *extra, "--format", "sarif"]) == 2


def test_legacy_json_flags_still_parse():
    parser = build_parser()
    for command in ("analyze", "check", "explore"):
        assert parser.parse_args([command, "--json"]).json is True
    # chaos --json FILE was "write the chaos-report here": now an alias
    # for --out.
    assert parser.parse_args(["chaos", "--plan", "p", "--json", "report.json"]).out == (
        "report.json"
    )


def test_analyze_writes_report_to_out(tmp_path):
    target = tmp_path / "findings.json"
    code = main(
        [
            "analyze",
            "src/repro/okws/sharding.py",
            "--format",
            "json",
            "--out",
            str(target),
        ]
    )
    assert code in (0, 1)  # report emitted either way
    doc = json.loads(target.read_text())
    assert "rules" in doc


def test_bench_scale_selects_the_scale_figure(monkeypatch, tmp_path):
    calls = {}

    def fake_run_bench(out_dir=".", quick=False, only=None, echo=print):
        calls["only"] = only
        calls["out_dir"] = out_dir
        return []

    from repro.obs import bench

    monkeypatch.setattr(bench, "run_bench", fake_run_bench)
    assert main(["bench", "--scale", "--quick", "--out", str(tmp_path)]) == 0
    assert calls["only"] == ["scale"]
    assert calls["out_dir"] == str(tmp_path)
    assert main(["bench", "--scale", "--only", "fig7"]) == 0
    assert calls["only"] == ["fig7", "scale"]
    assert calls["out_dir"] == "."


def test_bench_unknown_figure_is_a_usage_error():
    assert main(["bench", "--only", "fig99"]) == 2


def test_bench_validate_exit_codes(tmp_path):
    good = tmp_path / "BENCH_ok.json"
    good.write_text(json.dumps(json.load(open("BENCH_fig6.json"))))
    assert main(["bench", "--validate", str(good)]) == 0
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{}")
    assert main(["bench", "--validate", str(bad)]) == 1


def test_chaos_seed_feeds_the_single_campaign(monkeypatch):
    seen = {}

    def fake_run_campaign(plan, seed, **kwargs):
        seen["seed"] = seed

        class R:
            passed = True
            checks = {}

            def summary_lines(self):
                return []

            def to_json(self):
                return {}

        return R()

    import repro.faults.campaign as campaign
    import repro.faults.plan as plan_mod

    monkeypatch.setattr(campaign, "run_campaign", fake_run_campaign)
    monkeypatch.setattr(plan_mod, "load_plan", lambda path: object())
    assert (
        main(["chaos", "--plan", "whatever.json", "--seed", "99", "--repeat", "1"])
        == 0
    )
    assert seen["seed"] == 99
