"""Policy recipes: MLS emulation (Section 5.2), capabilities (Section 5.5),
integrity idioms (Section 5.4)."""

import pytest

from repro.core.handles import HandleAllocator
from repro.core.labels import Label
from repro.core.levels import L0, L1, L2, L3, STAR
from repro.policies import (
    MlsPolicy,
    grant_send_right,
    open_port_label,
    sealed_port_label,
    speaks_for,
    write_verify_label,
)
from repro.policies.integrity import (
    grant_speaks_for,
    network_daemon_send,
    network_exclusion_verify,
)


# -- MLS ----------------------------------------------------------------------------


@pytest.fixture
def mls():
    return MlsPolicy.create(["unclassified", "secret", "top-secret"])


def test_mls_labels_match_paper(mls):
    # "{2} for unclassified, {s3, 2} for secret, {s3, t3, 2} for top-secret"
    s = mls.compartments["secret"]
    t = mls.compartments["top-secret"]
    assert mls.clearance("unclassified") == Label({}, L2)
    assert mls.clearance("secret") == Label({s: L3}, L2)
    assert mls.clearance("top-secret") == Label({s: L3, t: L3}, L2)
    assert mls.classification("secret") == Label({s: L3}, L1)


def test_mls_flow_matrix(mls):
    levels = ["unclassified", "secret", "top-secret"]
    for i, frm in enumerate(levels):
        for j, to in enumerate(levels):
            expected = i <= j   # information flows up only
            assert mls.can_flow(frm, to) == expected, (frm, to)


def test_mls_odd_label_still_safe(mls):
    # A send label of {t3, 1} maps to no level but can only reach
    # top-secret clearance (paper Section 5.2).
    t = mls.compartments["top-secret"]
    odd = Label({t: L3}, L1)
    assert not odd <= mls.clearance("secret")
    assert odd <= mls.clearance("top-secret")


def test_mls_downgrader_absorbs_everything(mls):
    # The downgrader holds ⋆ everywhere, so contamination cannot stick:
    # (QS ⊔ (ES ⊓ QS*)) leaves its stars alone.
    from repro.core.labelops import apply_send_effects_reference

    qs = mls.downgrader()
    es = mls.classification("top-secret")
    result = apply_send_effects_reference(qs, es, Label.top())
    assert result == qs


def test_mls_many_levels():
    policy = MlsPolicy.create([f"L{i}" for i in range(10)])
    assert policy.can_flow("L3", "L7")
    assert not policy.can_flow("L7", "L3")


def test_mls_unknown_level(mls):
    with pytest.raises(ValueError):
        mls.clearance("cosmic")


def test_mls_from_handles():
    alloc = HandleAllocator()
    handles = [alloc.fresh()]
    policy = MlsPolicy.from_handles(["low", "high"], handles)
    assert policy.compartments["high"] == handles[0]
    with pytest.raises(ValueError):
        MlsPolicy.from_handles(["low", "high"], [])


# -- capabilities ------------------------------------------------------------------------


def test_capability_labels():
    port = 42
    assert grant_send_right(port) == Label({port: STAR}, L3)
    assert sealed_port_label(port) == Label({port: L0}, L2)
    assert open_port_label() == Label.top()


# -- integrity ------------------------------------------------------------------------------


def test_speaks_for():
    uG = 7
    assert speaks_for(Label({uG: L0}, L1), uG)
    assert speaks_for(Label({uG: STAR}, L1), uG)
    assert not speaks_for(Label({}, L1), uG)


def test_write_verify_label_shapes():
    uG, uT = 7, 8
    assert write_verify_label(uG) == Label({uG: L0}, L3)
    assert write_verify_label(uG, uT) == Label({uG: L0, uT: L3}, L2)


def test_mandatory_grant_destroyed_by_low_integrity_message():
    # Section 5.4: a level-0 grant is lost the moment its holder receives
    # from a non-speaker (contamination raises 0 -> 1).
    from repro.core.labelops import apply_send_effects_reference

    uG = 7
    holder = Label({uG: L0}, L1)
    non_speaker_es = Label({}, L1)
    after = apply_send_effects_reference(holder, non_speaker_es, Label.top())
    assert after(uG) == L1
    assert not speaks_for(after, uG)


def test_durable_grant_survives():
    from repro.core.labelops import apply_send_effects_reference

    uG = 7
    holder = grant_speaks_for(uG, mandatory=False)  # the DS label, ⋆
    receiver = Label({uG: STAR}, L1)
    after = apply_send_effects_reference(receiver, Label({}, L1), Label.top())
    assert after(uG) == STAR


def test_network_exclusion_policy():
    # Section 5.4's system-file example: the network daemon's send label
    # {s 2, 1} cannot satisfy the file server's V(s) <= 1 requirement.
    s = 9
    netd_label = network_daemon_send(s)
    required_v = network_exclusion_verify(s)
    # Delivery requires ES ⊑ V: netd's s-2 exceeds V's s-1.
    assert not netd_label <= required_v
    # An unexposed process passes.
    assert Label({}, L1) <= required_v
