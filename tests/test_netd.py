"""netd: connection ports, per-connection taint, and the step-1/step-5
label behaviour of Figure 5 (paper Section 7.7)."""

import pytest

from repro.core.labels import Label
from repro.core.levels import L0, L2, L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel import NewHandle, NewPort, Recv, Send, SetPortLabel
from repro.kernel.clock import NETWORK
from repro.servers.netd import Wire, netd_body


@pytest.fixture
def net(kernel):
    wire = Wire()
    proc = kernel.spawn(netd_body, "netd", component=NETWORK, env={"wire": wire})
    kernel.run()
    return proc, wire


def spawn_listener(kernel, netd_port):
    """An app that LISTENs on TCP port 80 and records ACCEPT_Rs."""
    accepted = []

    def body(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(netd_port, P.request(P.LISTEN, port=80, notify=port))
        while True:
            msg = yield Recv(port=port)
            accepted.append(msg.payload)

    proc = kernel.spawn(body, "app")
    kernel.run()
    return proc, accepted


def test_open_notifies_listener_with_capability(kernel, net):
    netd, wire = net
    app, accepted = spawn_listener(kernel, netd.env["netd_port"])
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 1, "dport": 80})
    kernel.run()
    assert len(accepted) == 1
    conn_port = accepted[0]["conn"]
    # The listener received uC at ⋆ (the DS grant) — check the app's label.
    assert app.send_label(conn_port) == STAR
    # The connection port label is {uC 0, 2} (step 1 of Figure 5).
    port = kernel.ports[conn_port]
    label = port.label.to_label()
    assert label(conn_port) == L0
    assert label.default == L2


def test_open_to_unlistened_port_closes(kernel, net):
    netd, wire = net
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 9, "dport": 99})
    kernel.run()
    assert wire.closed.get(9) is True


def test_read_write_roundtrip(kernel, net):
    netd, wire = net
    app_results = []

    def app(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["netd_port"], P.request(P.LISTEN, port=80, notify=port))
        accept = yield Recv(port=port)
        conn = accept.payload["conn"]
        chan = yield from Channel.open()
        r = yield from chan.call(conn, P.request(P.READ))
        app_results.append(r.payload["data"])
        yield Send(conn, P.request(P.WRITE, data=b"response"))

    kernel.spawn(app, "app", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 1, "dport": 80})
    kernel.inject(netd.env["netd_wire_port"], {"type": "DATA", "conn": 1, "data": b"request"})
    kernel.run()
    assert app_results == [b"request"]
    assert wire.take(1) == [b"response"]


def test_read_blocks_until_data(kernel, net):
    netd, wire = net
    app_results = []

    def app(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["netd_port"], P.request(P.LISTEN, port=80, notify=port))
        accept = yield Recv(port=port)
        chan = yield from Channel.open()
        r = yield from chan.call(accept.payload["conn"], P.request(P.READ))
        app_results.append(r.payload["data"])

    kernel.spawn(app, "app", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 1, "dport": 80})
    kernel.run()
    assert app_results == []     # READ pending, no data yet
    kernel.inject(netd.env["netd_wire_port"], {"type": "DATA", "conn": 1, "data": b"late"})
    kernel.run()
    assert app_results == [b"late"]


def test_stranger_cannot_use_connection(kernel, net):
    # The {uC 0, 2} port label seals the socket: a process without the
    # capability cannot READ or WRITE it.
    netd, wire = net
    app, accepted = spawn_listener(kernel, netd.env["netd_port"])
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 1, "dport": 80})
    kernel.run()
    conn = accepted[0]["conn"]
    before = kernel.drop_log.count("label-check")

    def stranger(ctx):
        chan = yield from Channel.open()
        yield Send(conn, dict(P.request(P.WRITE, data=b"hijack"), reply=chan.port))

    kernel.spawn(stranger, "stranger")
    kernel.run()
    assert kernel.drop_log.count("label-check") == before + 1
    assert wire.take(1) == []    # nothing went out


def test_add_taint_contaminates_reads(kernel, net):
    netd, wire = net
    seen = []

    def app(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["netd_port"], P.request(P.LISTEN, port=80, notify=port))
        accept = yield Recv(port=port)
        conn = accept.payload["conn"]
        uT = yield NewHandle()
        ctx.env["uT"] = uT
        # As ok-demux does: accept u's taint ourselves before asking netd
        # to contaminate the connection's data.
        from repro.kernel import ChangeLabel
        yield ChangeLabel(raise_receive={uT: L3})
        yield Send(
            ctx.env["netd_port"],
            P.request("ADD_TAINT", conn=conn, taint=uT),
            decontaminate_send=Label({uT: STAR}, L3),
        )
        chan = yield from Channel.open()
        r = yield from chan.call(conn, P.request(P.READ))
        from repro.kernel import GetLabels
        send, _ = yield GetLabels()
        seen.append((r.payload["data"], send(uT)))

    app_proc = kernel.spawn(app, "app", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 1, "dport": 80})
    kernel.inject(netd.env["netd_wire_port"], {"type": "DATA", "conn": 1, "data": b"user-bytes"})
    kernel.run()
    # The app created uT so it holds ⋆; data arrived contaminated but the
    # star absorbed it.  netd's own receive label now admits uT 3.
    assert seen == [(b"user-bytes", STAR)]
    assert netd.receive_label(app_proc.env["uT"]) == L3


def test_add_taint_without_grant_ignored(kernel, net):
    netd, wire = net
    app, accepted = spawn_listener(kernel, netd.env["netd_port"])
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 1, "dport": 80})
    kernel.run()
    conn = accepted[0]["conn"]

    def sneaky(ctx):
        uT = yield NewHandle()
        ctx.env["uT"] = uT
        # No DS grant: netd must ignore the request.
        yield Send(ctx.env["netd_port"], P.request("ADD_TAINT", conn=conn, taint=uT))

    sneaky_proc = kernel.spawn(sneaky, "sneaky", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    assert netd.receive_label(sneaky_proc.env["uT"]) == L2  # unchanged


def test_tainted_data_cannot_leave_via_other_connection(kernel, net):
    # The heart of step 5: uT-tainted data may flow out only via u's own
    # connection; a process tainted with u's handle cannot write to v's.
    netd, wire = net
    done = []

    def app(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["netd_port"], P.request(P.LISTEN, port=80, notify=port))
        a1 = yield Recv(port=port)
        a2 = yield Recv(port=port)
        u_conn, v_conn = a1.payload["conn"], a2.payload["conn"]
        uT = yield NewHandle()
        yield Send(
            ctx.env["netd_port"],
            P.request("ADD_TAINT", conn=u_conn, taint=uT),
            decontaminate_send=Label({uT: STAR}, L3),
        )
        # Writes carrying uT-3 contamination: u's connection admits them
        # (its port label gained uT 3 in the ADD_TAINT), v's does not.
        yield Send(u_conn, P.request(P.WRITE, data=b"for-u"),
                   contaminate=Label({uT: L3}, STAR))
        yield Send(v_conn, P.request(P.WRITE, data=b"leak-to-v"),
                   contaminate=Label({uT: L3}, STAR))
        done.append("sent")

    kernel.spawn(app, "app", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 1, "dport": 80})
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 2, "dport": 80})
    kernel.run()
    # u's connection got its bytes; v's got nothing (label check dropped
    # the uT-3 write because v_conn's port label has no uT entry).
    assert wire.take(1) == [b"for-u"]
    assert wire.take(2) == []


def test_close_releases_capability_and_port(kernel, net):
    netd, wire = net
    app, accepted = spawn_listener(kernel, netd.env["netd_port"])
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 1, "dport": 80})
    kernel.run()
    conn = accepted[0]["conn"]
    assert conn in kernel.ports
    assert netd.send_label(conn) == STAR
    kernel.inject(netd.env["netd_wire_port"], {"type": "CLOSE", "conn": 1})
    kernel.run()
    assert conn not in kernel.ports
    # The capability was released (Section 9.3).
    assert netd.send_label(conn) == netd.send_label.default


def test_select_reports_space(kernel, net):
    netd, wire = net
    results = []

    def app(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        yield Send(ctx.env["netd_port"], P.request(P.LISTEN, port=80, notify=port))
        accept = yield Recv(port=port)
        chan = yield from Channel.open()
        r = yield from chan.call(accept.payload["conn"], P.request(P.SELECT))
        results.append(r.payload["space"])

    kernel.spawn(app, "app", env={"netd_port": netd.env["netd_port"]})
    kernel.run()
    kernel.inject(netd.env["netd_wire_port"], {"type": "OPEN", "conn": 1, "dport": 80})
    kernel.run()
    assert results == [65536]
