"""Kernel internals: scheduler, vnode table, ports, clock, memory report,
and the resource accounting the evaluation depends on."""

import pytest

from repro.core.chunks import ChunkedLabel
from repro.core.labels import Label
from repro.kernel import (
    EpCheckpoint,
    EpYield,
    Kernel,
    KernelConfig,
    NewHandle,
    NewPort,
    Recv,
    SetPortLabel,
)
from repro.kernel.clock import CostModel, CycleClock, KERNEL_IPC, NETWORK
from repro.kernel.message import QueuedMessage
from repro.kernel.ports import Port
from repro.kernel.scheduler import Scheduler
from repro.kernel.vnodes import VNODE_BYTES, VnodeTable


# -- scheduler ------------------------------------------------------------------


def test_scheduler_fifo_and_idempotent_enqueue():
    s = Scheduler()
    s.enqueue("a")
    s.enqueue("b")
    s.enqueue("a")          # no duplicate
    assert len(s) == 2
    assert s.dequeue() == "a"
    assert s.dequeue() == "b"
    assert not s


def test_scheduler_remove():
    s = Scheduler()
    s.enqueue("a")
    s.enqueue("b")
    s.remove("a")
    assert "a" not in s
    assert s.dequeue() == "b"
    s.remove("missing")     # no-op


# -- vnodes ---------------------------------------------------------------------


def test_vnode_lifecycle():
    table = VnodeTable()
    v = table.create(42, is_port=True, owner="p1")
    assert table.get(42) is v
    assert table.memory_bytes() == VNODE_BYTES
    table.incref(42)
    table.decref(42)
    assert table.get(42) is not None      # port alive, refs remain
    v.dissociated = True
    table.decref(42)
    assert table.get(42) is None


def test_vnode_duplicate_rejected():
    table = VnodeTable()
    table.create(1)
    with pytest.raises(AssertionError):
        table.create(1)


# -- ports ----------------------------------------------------------------------------


def _qmsg(seq=1, port=1):
    top = ChunkedLabel.from_label(Label.top())
    bottom = ChunkedLabel.from_label(Label.bottom())
    return QueuedMessage(
        seq=seq,
        port=port,
        payload=b"x" * 100,
        effective_send=bottom,
        decontaminate_send=top,
        verify=top,
        decontaminate_receive=bottom,
        sender_name="t",
        payload_bytes=100,
    )


def test_port_queue_and_memory():
    port = Port(handle=1, label=ChunkedLabel.from_label(Label.top()), owner="p1")
    assert port.enqueue(_qmsg())
    assert port.queued_bytes == 100
    assert port.memory_bytes() > 100
    port.dissociate()
    assert not port.alive
    assert not port.enqueue(_qmsg(seq=2))
    assert port.queued_bytes == 0


def test_port_queue_limit():
    port = Port(
        handle=1, label=ChunkedLabel.from_label(Label.top()), owner="p1", queue_limit=2
    )
    assert port.enqueue(_qmsg(1))
    assert port.enqueue(_qmsg(2))
    assert not port.enqueue(_qmsg(3))


# -- clock -------------------------------------------------------------------------------


def test_clock_charging_and_snapshots():
    clock = CycleClock()
    clock.charge(NETWORK, 100)
    clock.charge(KERNEL_IPC, 50)
    snap = clock.snapshot()
    clock.charge(NETWORK, 25)
    delta = clock.delta(snap)
    assert delta[NETWORK] == 25
    assert delta[KERNEL_IPC] == 0
    assert clock.now == 175
    assert clock.seconds == 175 / 2_800_000_000
    with pytest.raises(ValueError):
        clock.charge(NETWORK, -1)
    clock.reset()
    assert clock.now == 0


def test_cost_model_label_work():
    from repro.core.chunks import OpStats

    cost = CostModel()
    stats = OpStats(entries_scanned=10, operations=2, labels_allocated=1)
    assert cost.label_work(stats) == (
        10 * cost.label_entry + 2 * cost.label_op_base + cost.label_alloc
    )


# -- memory report -------------------------------------------------------------------------


def test_memory_report_structure(kernel):
    def prog(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        ctx.mem.alloc(8192, "data")
        yield Recv(port=port)

    kernel.spawn(prog, "prog")
    kernel.run()
    report = kernel.memory_report()
    assert report["user_pages"] >= 4          # stack, xstack, data x2
    assert report["process_bytes"] == 320
    assert report["label_bytes"] > 0
    assert report["vnode_bytes"] >= 64
    assert report["total_bytes"] == report["user_pages"] * 4096 + report["kernel_bytes"]
    assert report["kernel_bytes"] == sum(
        report[k] for k in ("process_bytes", "ep_bytes", "port_bytes", "label_bytes", "vnode_bytes")
    )


def test_memory_report_counts_eps(kernel):
    def event_body(ectx, msg):
        ectx.mem.store("session", b"x" * 1000)
        yield EpYield()

    def base(ctx):
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        yield EpCheckpoint(event_body)

    proc = kernel.spawn(base, "worker")
    kernel.run()
    before = kernel.memory_report()
    for i in range(10):
        kernel.inject(proc.env["port"], i)
    kernel.run()
    after = kernel.memory_report()
    assert after["ep_bytes"] > before["ep_bytes"]
    assert after["user_pages"] > before["user_pages"]


def test_ram_cap_enforced_by_kernel():
    kernel = Kernel(config=KernelConfig(ram_bytes=64 * 4096, trace=True))
    crashed = []

    def hog(ctx):
        try:
            ctx.mem.alloc(100 * 4096, "huge")
        except Exception as err:
            crashed.append(type(err).__name__)
        yield NewHandle()

    kernel.spawn(hog, "hog")
    kernel.run()
    assert crashed == ["ResourceExhausted"]


def test_handle_space_is_shared_and_unique(kernel):
    handles = []

    def a(ctx):
        for _ in range(50):
            handles.append((yield NewHandle()))

    def b(ctx):
        for _ in range(50):
            handles.append((yield NewPort()))

    kernel.spawn(a, "a")
    kernel.spawn(b, "b")
    kernel.run()
    assert len(set(handles)) == 100  # ports and handles share one namespace
