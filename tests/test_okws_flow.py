"""Integration: the full OKWS message flow of Figure 5, sessions
(Section 7.3), database policies (Section 7.5), and decentralized
declassification (Section 7.6)."""

import pytest

from repro.core.levels import L3, STAR
from repro.okws import ServiceConfig, launch
from repro.okws.services import (
    echo_handler,
    notes_handler,
    profile_declassifier_handler,
    profile_handler,
    session_cache_handler,
)
from repro.sim.workload import HttpClient


@pytest.fixture(scope="module")
def site():
    return launch(
        services=[
            ServiceConfig("cache", session_cache_handler),
            ServiceConfig("echo", echo_handler),
            ServiceConfig("notes", notes_handler),
            ServiceConfig("profile", profile_handler),
            ServiceConfig("publish", profile_declassifier_handler, declassifier=True),
        ],
        users=[("alice", "pw-a"), ("bob", "pw-b"), ("carol", "pw-c")],
        schema=[
            "CREATE TABLE notes (author TEXT, text TEXT)",
            "CREATE TABLE profiles (owner TEXT, bio TEXT)",
        ],
    )


@pytest.fixture(scope="module")
def client(site):
    return HttpClient(site)


def test_basic_request(site, client):
    r = client.request("alice", "pw-a", "echo", args={"length": 11})
    assert r.ok
    assert r.body == "x" * 11
    assert r.payload["headers"].startswith("HTTP/1.0 200 OK")


def test_response_size_matches_paper(site, client):
    # Section 9.2.1: 144 bytes of HTTP data, 133 bytes of headers.
    r = client.request("alice", "pw-a", "echo", args={"length": 11})
    assert len(r.payload["headers"]) == 133
    assert len(r.payload["headers"]) + len(r.body) == 144


def test_bad_password_rejected(site, client):
    r = client.request("alice", "WRONG", "echo")
    assert not r.ok
    assert r.payload["status"] == 403


def test_unknown_user_rejected(site, client):
    r = client.request("mallory", "x", "echo")
    assert r.payload["status"] == 403


def test_unknown_service_404(site, client):
    r = client.request("alice", "pw-a", "no-such-service")
    assert r.payload["status"] == 404


def test_sessions_persist_state(site, client):
    r1 = client.request("alice", "pw-a", "cache", body=b"first-visit")
    r2 = client.request("alice", "pw-a", "cache", body=b"second-visit")
    assert r2.body.startswith(b"first-visit")
    assert r2.payload["hits"] == r1.payload["hits"] + 1


def test_sessions_are_per_user(site, client):
    ra = client.request("alice", "pw-a", "cache", body=b"A")
    rb = client.request("bob", "pw-b", "cache", body=b"B")
    # bob's first visit has its own hit counter and sees no alice data.
    assert rb.payload["hits"] == 1
    assert rb.payload["user"] == "bob"


def test_sessions_are_per_service_too(site, client):
    before = client.request("alice", "pw-a", "cache", body=b"x").payload["hits"]
    client.request("alice", "pw-a", "echo")
    after = client.request("alice", "pw-a", "cache", body=b"y").payload["hits"]
    assert after == before + 1


def test_one_event_process_per_session(site, client):
    workers = {
        p.name: p for p in site.kernel.processes.values() if p.name.startswith("worker-")
    }
    cache_worker = workers["worker-cache"]
    # alice and bob both have cache sessions from the tests above.
    assert len(cache_worker.event_processes) >= 2


def test_db_notes_are_isolated_by_kernel(site, client):
    client.request("alice", "pw-a", "notes", body="alice-private", args={"op": "add"})
    client.request("bob", "pw-b", "notes", body="bob-private", args={"op": "add"})
    alice_sees = client.request("alice", "pw-a", "notes", args={"op": "list"}).body
    bob_sees = client.request("bob", "pw-b", "notes", args={"op": "list"}).body
    assert "alice-private" in alice_sees and "bob-private" not in alice_sees
    assert "bob-private" in bob_sees and "alice-private" not in bob_sees


def test_foreign_rows_dropped_by_label_check_not_filtering(site, client):
    # The isolation above is kernel enforcement: the dropped ROW_R
    # messages appear in the (out-of-band) drop log.
    before = site.kernel.drop_log.count("label-check")
    client.request("alice", "pw-a", "notes", args={"op": "list"})
    assert site.kernel.drop_log.count("label-check") > before


def test_declassification_flow(site, client):
    client.request("alice", "pw-a", "profile", body="alice's bio", args={"op": "set"})
    # Private: bob sees nothing.
    assert client.request("bob", "pw-b", "profile", args={"op": "get"}).body == {}
    # Alice runs the declassifier on her own data.
    r = client.request("alice", "pw-a", "publish")
    assert "declassified" in r.body
    # Public: everyone sees it now.
    assert (
        client.request("bob", "pw-b", "profile", args={"op": "get"}).body
        == {"alice": "alice's bio"}
    )


def test_declassifier_only_declassifies_its_own_user(site, client):
    client.request("carol", "pw-c", "profile", body="carol-private", args={"op": "set"})
    # Bob runs the declassifier: it holds ⋆ only for *bob's* taint, so
    # carol's profile stays private.
    client.request("bob", "pw-b", "publish")
    visible = client.request("alice", "pw-a", "profile", args={"op": "get"}).body
    assert "carol" not in visible


def test_workers_and_declassifier_labels(site, client):
    # A regular worker's EP carries uT 3; the declassifier's carries uT ⋆.
    workers = {p.name: p for p in site.kernel.processes.values()}
    notes_eps = list(workers["worker-notes"].event_processes.values())
    publish_eps = list(workers["worker-publish"].event_processes.values())
    assert notes_eps and publish_eps
    assert any(
        lvl == L3 for ep in notes_eps for _, lvl in ep.send_label.iter_entries()
    )
    assert all(
        all(lvl == STAR for _, lvl in ep.send_label.iter_entries())
        for ep in publish_eps
    )


def test_trusted_processes_hold_stars_not_taint(site, client):
    # netd, idd, ok-dbproxy, ok-demux accumulate ⋆ per user but no taint
    # (Section 7.2: "any process that accesses u's data either is trusted
    # and has uT ⋆ ... or is not trusted and has uT 3").
    for name in ("netd", "idd", "ok-dbproxy", "ok-demux"):
        proc = next(p for p in site.kernel.processes.values() if p.name == name)
        levels = {lvl for _, lvl in proc.send_label.iter_entries()}
        assert levels <= {STAR}, f"{name} carries taint: {levels}"


def test_batch_concurrent_requests(site, client):
    responses = client.run_batch(
        [("alice", "pw-a", "echo", None, {"length": 5}) for _ in range(20)]
        + [("bob", "pw-b", "echo", None, {"length": 7}) for _ in range(20)],
        concurrency=16,
    )
    assert len(responses) == 40
    bodies = {r.body for r in responses}
    assert bodies == {"x" * 5, "x" * 7}
    assert all(r.latency_cycles > 0 for r in responses)
