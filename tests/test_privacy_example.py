"""The Figure 2 / Section 5.2 worked example, end to end: users u and v,
shells, a terminal, and the trusted file server."""

import pytest

from repro.core.labels import Label
from repro.core.levels import L2, L3, STAR
from repro.ipc import protocol as P
from repro.ipc.rpc import Channel
from repro.kernel import GetLabels, NewHandle, NewPort, Recv, Send, SetPortLabel, Spawn
from repro.servers.fileserver import file_server_body


@pytest.fixture
def world(kernel):
    """Figure 2's processes: FS (trusted), shells U and V, terminal UT."""
    fs = kernel.spawn(file_server_body, "fs")
    kernel.run()
    state = {"fs_port": fs.env["fs_port"], "kernel": kernel, "terminal": []}

    def terminal(ctx):
        # User u's terminal: receives output, labelled like U.
        port = yield NewPort()
        yield SetPortLabel(port, Label.top())
        ctx.env["port"] = port
        setup = yield Recv(port=port)  # clearance from the manager
        while True:
            msg = yield Recv(port=port)
            state["terminal"].append(msg.payload)

    def shell(ctx):
        chan = yield from Channel.open()
        yield Send(ctx.env["mgr"], {"who": ctx.env["who"], "port": chan.port})
        setup = yield Recv(port=chan.port)
        # Read u's file and try to print it on u's terminal.
        r = yield from chan.call(state["fs_port"], P.request(P.READ, path="/u/secret"))
        yield Send(setup.payload["terminal"], {"from": ctx.env["who"], "data": r.payload["data"]})
        send, _ = yield GetLabels()
        state.setdefault("done", {})[ctx.env["who"]] = send
        # Stay alive so the test can inspect us.
        yield Recv(port=chan.port)

    def manager(ctx):
        uT = yield NewHandle()
        vT = yield NewHandle()
        state["uT"], state["vT"] = uT, vT
        mgr_port = yield NewPort()
        yield SetPortLabel(mgr_port, Label.top())
        chan = yield from Channel.open()
        # The file server is trusted with both users' compartments.
        yield from chan.call(
            state["fs_port"],
            P.request(P.CREATE, path="/u/secret", taint=uT, data=b"u-private-data"),
            decontaminate_send=Label({uT: STAR}, L3),
        )
        # Terminal UT: labelled like U — US = {uT 3, 1}, UR = {uT 3, 2}.
        yield Spawn(terminal, name="UT", env={})
        # The terminal announces nothing; configure via direct knowledge:
        # instead, spawn and configure through its announced port:
        # (simpler: shells announce; terminal's port reaches us via env)
        # -- create shells --
        yield Spawn(shell, name="U", env={"mgr": mgr_port, "who": "U"})
        yield Spawn(shell, name="V", env={"mgr": mgr_port, "who": "V"})
        hellos = {}
        for _ in range(2):
            msg = yield Recv(port=mgr_port)
            hellos[msg.payload["who"]] = msg.payload["port"]
        state["hellos"] = hellos
        ctx.env["mgr_port"] = mgr_port

    proc = kernel.spawn(manager, "manager")
    kernel.run()
    state["manager"] = proc
    return state


def test_figure_2_labels_and_flows(world):
    kernel = world["kernel"]
    uT, vT = world["uT"], world["vT"]
    terminal_proc = next(p for p in kernel.processes.values() if p.name == "UT")
    terminal_port = None
    # The terminal is blocked on its setup Recv; fish its port out of the
    # kernel (the manager would have learned it via a handshake IRL).
    terminal_port = sorted(terminal_proc.owned_ports)[0]

    def finish_setup(ctx):
        # Configure the terminal like U: contaminate uT 3, clear uT 3.
        yield Send(
            terminal_port,
            {"setup": True},
            contaminate=Label({uT: L3}, STAR),
            decontaminate_receive=Label({uT: L3}, STAR),
        )
        # Configure shell U: taint uT, clearance uT.
        yield Send(
            world["hellos"]["U"],
            {"terminal": terminal_port},
            contaminate=Label({uT: L3}, STAR),
            decontaminate_receive=Label({uT: L3}, STAR),
        )
        # Configure shell V: taint vT, clearance vT — no access to uT.
        yield Send(
            world["hellos"]["V"],
            {"terminal": terminal_port},
            contaminate=Label({vT: L3}, STAR),
            decontaminate_receive=Label({vT: L3}, STAR),
        )

    # The configurer must control both compartments: run it as a child of
    # the manager?  The manager created the handles; spawn inheriting them.
    kernel.spawn(finish_setup, "configurer", parent=world["manager"], inherit_labels=True)
    kernel.run()

    # U's shell read u's file and printed it on u's terminal.
    assert world["terminal"] == [{"from": "U", "data": b"u-private-data"}]

    # V's shell never got the file: its READ_R was dropped, so it is still
    # blocked in its call and never recorded completion.
    assert "U" in world.get("done", {})
    assert "V" not in world.get("done", {})
    v_shell = next(p for p in kernel.processes.values() if p.name == "V")

    # Label state matches Figure 2: US = {uT 3, 1} (plus its ports' ⋆),
    # VS = {vT 3, 1}, UTR = {uT 3, 2}.
    u_send = world["done"]["U"]
    assert u_send(uT) == L3
    assert v_shell.send_label(vT) == L3
    assert terminal_proc.receive_label(uT) == L3
    assert terminal_proc.receive_label(vT) == L2   # default: vT refused
    assert kernel.drop_log.count("label-check") >= 1
