"""Unit and property tests for the chunked kernel label representation
(paper Section 5.6)."""


import pytest
from hypothesis import given, strategies as st

from repro.core.chunks import CHUNK_CAPACITY, Chunk, ChunkedLabel, OpStats, shared_memory_bytes
from repro.core.labels import Label
from repro.core.levels import ALL_LEVELS, L1, L2, L3, STAR

levels = st.sampled_from(ALL_LEVELS)
labels = st.builds(
    Label,
    st.dictionaries(st.integers(min_value=0, max_value=300), levels, max_size=40),
    default=levels,
)


def big_label(n: int, level=L3, default=L1) -> Label:
    return Label({i * 7 + 1: level for i in range(n)}, default)


# -- structure -----------------------------------------------------------------


def test_roundtrip():
    lab = Label({1: STAR, 2: L3, 900: L2}, default=L1)
    assert ChunkedLabel.from_label(lab).to_label() == lab


def test_chunking_splits_at_capacity():
    lab = big_label(CHUNK_CAPACITY * 2 + 5)
    cl = ChunkedLabel.from_label(lab)
    assert len(cl.chunks) == 3
    assert all(len(c) <= CHUNK_CAPACITY for c in cl.chunks)
    # Chunks are globally sorted runs.
    flat = [h for h, _ in cl.iter_entries()]
    assert flat == sorted(flat)


def test_chunk_overflow_rejected():
    with pytest.raises(ValueError):
        Chunk(tuple((i, L1) for i in range(CHUNK_CAPACITY + 1)))


def test_lookup_binary_search():
    lab = big_label(500)
    cl = ChunkedLabel.from_label(lab)
    assert cl(1) == L3          # first entry
    assert cl(499 * 7 + 1) == L3  # last entry
    assert cl(2) == L1          # default


def test_min_max_hints_include_default():
    cl = ChunkedLabel.from_label(Label({5: L3}, STAR))
    assert cl.min_level == STAR
    assert cl.max_level == L3
    assert cl.explicit_min == L3


def test_memory_bytes_smallest_label_about_300():
    # "The smallest label is about 300 bytes long, including space for one
    # chunk."
    empty = ChunkedLabel.from_label(Label({}, L1))
    assert 250 <= empty.memory_bytes() <= 350
    small = ChunkedLabel.from_label(Label({1: L3}, L1))
    assert 250 <= small.memory_bytes() <= 350


def test_memory_grows_with_entries():
    small = ChunkedLabel.from_label(big_label(10)).memory_bytes()
    large = ChunkedLabel.from_label(big_label(1000)).memory_bytes()
    assert large > small
    # Roughly 8 bytes per slot.
    assert large >= 1000 * 8


def test_shared_memory_counts_shared_chunks_once():
    base = ChunkedLabel.from_label(big_label(200))
    stats = OpStats()
    # A lub that short-circuits shares every chunk.
    other = ChunkedLabel.from_label(Label({}, STAR))
    merged = base.lub(other, stats)
    assert merged is base
    total_shared = shared_memory_bytes([base, merged])
    assert total_shared < 2 * base.memory_bytes()
    assert total_shared >= base.memory_bytes()


# -- operator equivalence against the reference Label ----------------------------------


@given(labels, labels)
def test_leq_matches_reference(a, b):
    assert ChunkedLabel.from_label(a).leq(ChunkedLabel.from_label(b)) == (a <= b)


@given(labels, labels)
def test_lub_matches_reference(a, b):
    got = ChunkedLabel.from_label(a).lub(ChunkedLabel.from_label(b))
    assert got.to_label() == (a | b)


@given(labels, labels)
def test_glb_matches_reference(a, b):
    got = ChunkedLabel.from_label(a).glb(ChunkedLabel.from_label(b))
    assert got.to_label() == (a & b)


@given(labels)
def test_stars_matches_reference(a):
    assert ChunkedLabel.from_label(a).stars().to_label() == a.stars()


# -- the paper's short-circuit -----------------------------------------------------------


def test_lub_short_circuit_returns_operand():
    # "if L2's maximum level is no larger than L1's minimum level, then
    # L1 ⊔ L2 = L1 by definition" — and no memory is allocated.
    big = ChunkedLabel.from_label(big_label(300, level=L2, default=L2))
    low = ChunkedLabel.from_label(Label({7: L1, 9: STAR}, STAR))
    stats = OpStats()
    assert big.lub(low, stats) is big
    assert stats.chunks_allocated == 0
    assert stats.entries_scanned == 0


def test_glb_short_circuit_returns_operand():
    big = ChunkedLabel.from_label(big_label(300, level=L1, default=L1))
    high = ChunkedLabel.from_label(Label({7: L3}, L3))
    stats = OpStats()
    assert big.glb(high, stats) is big
    assert stats.chunks_allocated == 0


def test_merge_shares_unchanged_chunks():
    # Updating one handle in a 5-chunk label reuses the untouched chunks.
    from repro.core.labelops import sparse_update

    big = ChunkedLabel.from_label(big_label(CHUNK_CAPACITY * 5))
    stats = OpStats()
    updated = sparse_update(big, {1: STAR}, stats)
    assert updated.to_label() == big.to_label().with_entry(1, STAR)
    assert stats.chunks_shared >= 4
    assert stats.chunks_allocated == 1


def test_opstats_merge_and_reset():
    a = OpStats(entries_scanned=3, operations=1)
    b = OpStats(entries_scanned=2, chunks_allocated=5)
    a.merge(b)
    assert a.entries_scanned == 5
    assert a.chunks_allocated == 5
    a.reset()
    assert a.entries_scanned == 0
