"""KernelConfig: validation, env precedence, and the legacy-kwarg shim."""

import pytest

from repro.kernel import Kernel, KernelConfig


def test_defaults():
    config = KernelConfig()
    assert config.ram_bytes is None
    assert config.trace is False
    assert config.label_cost_mode == "paper"
    assert config.sanitize is False
    assert config.sanitize_strict is True
    assert config.metrics is False
    assert config.spans is False


def test_frozen():
    config = KernelConfig()
    with pytest.raises(Exception):
        config.trace = True


def test_validation():
    with pytest.raises(ValueError):
        KernelConfig(label_cost_mode="imaginary")
    with pytest.raises(ValueError):
        KernelConfig(ram_bytes=-1)
    with pytest.raises(ValueError):
        KernelConfig(span_limit=0)


def test_replace():
    config = KernelConfig().replace(metrics=True)
    assert config.metrics is True
    assert config.trace is False


def test_from_env_reads_environment():
    env = {
        "REPRO_SANITIZE": "1",
        "REPRO_SANITIZE_STRICT": "0",
        "REPRO_TRACE": "yes",
        "REPRO_METRICS": "1",
        "REPRO_SPANS": "on",
        "REPRO_LABEL_COST_MODE": "fused",
        "REPRO_RAM_BYTES": "4096",
    }
    config = KernelConfig.from_env(env=env)
    assert config.sanitize is True
    assert config.sanitize_strict is False
    assert config.trace is True
    assert config.metrics is True
    assert config.spans is True
    assert config.label_cost_mode == "fused"
    assert config.ram_bytes == 4096


def test_from_env_falsy_values():
    env = {"REPRO_SANITIZE": "0", "REPRO_TRACE": "false", "REPRO_METRICS": "off"}
    config = KernelConfig.from_env(env=env)
    assert config.sanitize is False
    assert config.trace is False
    assert config.metrics is False


def test_from_env_overrides_beat_environment():
    env = {"REPRO_TRACE": "1", "REPRO_LABEL_COST_MODE": "fused"}
    config = KernelConfig.from_env(env=env, trace=False, label_cost_mode="paper")
    assert config.trace is False
    assert config.label_cost_mode == "paper"


def test_from_env_none_override_means_unset():
    # The legacy Kernel(sanitize=None) contract: None consults the env.
    env = {"REPRO_SANITIZE": "1"}
    config = KernelConfig.from_env(env=env, sanitize=None)
    assert config.sanitize is True


def test_legacy_kwargs_warn_and_work():
    with pytest.warns(DeprecationWarning):
        kernel = Kernel(trace=True, sanitize=True)
    assert kernel.trace is True
    assert kernel.config.sanitize is True
    assert kernel.sanitizer is not None


def test_legacy_kwargs_conflict_with_config():
    with pytest.raises(ValueError):
        Kernel(trace=True, config=KernelConfig())


def test_config_drives_kernel():
    kernel = Kernel(config=KernelConfig(metrics=True, spans=True))
    assert kernel.metrics.enabled
    assert kernel.spans is not None
    plain = Kernel(config=KernelConfig())
    assert not plain.metrics.enabled
    assert plain.spans is None


# -- the interned-label fast path knobs (DESIGN.md §11) -----------------------------


def test_interning_defaults_off():
    config = KernelConfig()
    assert config.intern_labels is False
    assert config.labelop_cache_size == 4096


def test_interning_validation():
    with pytest.raises(ValueError):
        KernelConfig(labelop_cache_size=0)
    with pytest.raises(ValueError):
        KernelConfig(labelop_cache_size=-8)


def test_interning_from_env_round_trip():
    env = {"REPRO_INTERN_LABELS": "1", "REPRO_LABELOP_CACHE": "512"}
    config = KernelConfig.from_env(env=env)
    assert config.intern_labels is True
    assert config.labelop_cache_size == 512


def test_interning_env_falsy_and_unset():
    assert KernelConfig.from_env(env={"REPRO_INTERN_LABELS": "off"}).intern_labels is False
    config = KernelConfig.from_env(env={})
    assert config.intern_labels is False
    assert config.labelop_cache_size == 4096


def test_interning_explicit_overrides_beat_environment():
    env = {"REPRO_INTERN_LABELS": "1", "REPRO_LABELOP_CACHE": "512"}
    config = KernelConfig.from_env(env=env, intern_labels=False, labelop_cache_size=64)
    assert config.intern_labels is False
    assert config.labelop_cache_size == 64


def test_interning_replace_round_trip():
    config = KernelConfig().replace(intern_labels=True, labelop_cache_size=128)
    assert config.intern_labels is True
    assert config.labelop_cache_size == 128
    assert config.replace(intern_labels=False).labelop_cache_size == 128


def test_interning_config_drives_kernel():
    kernel = Kernel(config=KernelConfig(intern_labels=True, labelop_cache_size=128))
    assert kernel.labelop_cache is not None
    assert kernel.labelop_cache.size == 128
    assert kernel.intern_table is not None
    plain = Kernel(config=KernelConfig())
    assert plain.labelop_cache is None
    assert plain.intern_table is None
