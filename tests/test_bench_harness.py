"""The ``python -m repro bench`` harness: schema validation and a real
(tiny) end-to-end document write."""

import json

import pytest

from repro.obs import bench


def _minimal_doc():
    return {
        "schema": bench.SCHEMA,
        "figure": "fig6",
        "title": "t",
        "quick": True,
        "series": {"s": {"x": [1, 2], "y": [3, 4], "unit": "u"}},
        "comparisons": [
            {"name": "n", "paper": 1.0, "measured": 2.0, "ratio": 2.0, "unit": "x"}
        ],
        "metrics": None,
        "meta": {},
    }


def test_validate_accepts_minimal():
    assert bench.validate(_minimal_doc()) == []


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.pop("schema"),
        lambda d: d.update(schema="repro-bench/v0"),
        lambda d: d.update(figure="fig99"),
        lambda d: d.update(title=""),
        lambda d: d.update(quick="yes"),
        lambda d: d.update(series={"s": {"x": [1], "y": [1, 2]}}),
        lambda d: d.update(comparisons=[]),
        lambda d: d.update(comparisons=[{"name": "n"}]),
        lambda d: d.update(metrics=7),
    ],
)
def test_validate_rejects_malformed(mutate):
    doc = _minimal_doc()
    mutate(doc)
    assert bench.validate(doc)


def test_comparison_ratio():
    row = bench.comparison("x", 2.0, 3.0, "u")
    assert row["ratio"] == 1.5
    assert bench.comparison("x", "n/a", 3.0)["ratio"] is None
    assert bench.comparison("x", 0, 3.0)["ratio"] is None
    assert bench.comparison("ok", True, True)["ratio"] == 1.0


def test_run_bench_unknown_figure(tmp_path):
    with pytest.raises(ValueError):
        bench.run_bench(out_dir=str(tmp_path), quick=True, only=["fig99"])


def test_run_bench_writes_valid_fig6(tmp_path):
    paths = bench.run_bench(
        out_dir=str(tmp_path), quick=True, only=["fig6"], echo=lambda _: None
    )
    assert len(paths) == 1
    with open(paths[0]) as fh:
        doc = json.load(fh)
    assert bench.validate(doc) == []
    assert doc["figure"] == "fig6"
    assert doc["quick"] is True
    # The instrumented snapshot rode along and has the counters wired
    # through the kernel hot paths.
    metrics = doc["metrics"]
    assert metrics["metrics"]["kernel.ipc.sends"] > 0
    assert metrics["label_ops"]["fast_path"] > 0
    assert metrics["spans_recorded"] > 0
    # Slopes landed in the calibrated bands (same claim bench_fig6 makes).
    by_name = {row["name"]: row for row in doc["comparisons"]}
    assert 1.2 <= by_name["pages per cached session"]["measured"] <= 1.8
    # validate_files agrees with validate.
    assert bench.validate_files(paths) == {paths[0]: []}


def test_validate_files_reports_bad_json(tmp_path):
    bad = tmp_path / "BENCH_broken.json"
    bad.write_text("{not json")
    results = bench.validate_files([str(bad)])
    assert results[str(bad)]


# -- guard_files: one-sided in the *good* direction, per series unit ----------


def _guard_pair(tmp_path, name, base_series, fresh_series):
    """Write a baseline doc and a fresh doc and run the guard on them."""

    def doc(series):
        d = _minimal_doc()
        d["series"] = series
        return d

    base = tmp_path / name
    fresh_dir = tmp_path / "fresh"
    fresh_dir.mkdir(exist_ok=True)
    base.write_text(json.dumps(doc(base_series)))
    (fresh_dir / name).write_text(json.dumps(doc(fresh_series)))
    return bench.guard_files([str(base)], str(fresh_dir), tolerance=0.02)


def test_guard_catches_labelops_slowdown(tmp_path):
    """A label-op cost regression in BENCH_labelops.json must fail the
    guard: cost units get a ceiling, so a slowdown can't land silently."""
    base = {"kernel_ipc": {"x": [50, 200], "y": [212.1, 220.7], "unit": "Kcycles/conn"}}
    slower = {"kernel_ipc": {"x": [50, 200], "y": [212.1, 260.0], "unit": "Kcycles/conn"}}
    problems = _guard_pair(tmp_path, "BENCH_labelops.json", base, slower)
    assert len(problems) == 1
    assert "kernel_ipc@x=200" in problems[0]


def test_guard_never_fails_a_cost_improvement(tmp_path):
    """The old floor guard rewarded slowdowns and punished improvements
    on cost series; pin the flipped direction."""
    base = {"lat": {"x": [1], "y": [100.0], "unit": "us"}}
    faster = {"lat": {"x": [1], "y": [40.0], "unit": "us"}}
    assert _guard_pair(tmp_path, "BENCH_labelops.json", base, faster) == []


def test_guard_keeps_the_floor_for_benefit_series(tmp_path):
    base = {"tput": {"x": [1, 2], "y": [100.0, 200.0], "unit": "conn/s"}}
    slower = {"tput": {"x": [1, 2], "y": [100.0, 150.0], "unit": "conn/s"}}
    problems = _guard_pair(tmp_path, "BENCH_fig7.json", base, slower)
    assert len(problems) == 1
    assert "tput@x=2" in problems[0]
    faster = {"tput": {"x": [1, 2], "y": [110.0, 300.0], "unit": "conn/s"}}
    assert _guard_pair(tmp_path, "BENCH_fig7.json", base, faster) == []


def test_guard_flags_missing_series_and_grid_changes(tmp_path):
    base = {"a": {"x": [1], "y": [1.0], "unit": "x"}, "b": {"x": [1], "y": [1.0], "unit": "x"}}
    fresh = {"a": {"x": [1, 2], "y": [1.0, 1.0], "unit": "x"}}
    problems = _guard_pair(tmp_path, "BENCH_fig7.json", base, fresh)
    assert any("x-grid changed" in p for p in problems)
    assert any("missing from fresh run" in p for p in problems)
