"""The ``python -m repro bench`` harness: schema validation and a real
(tiny) end-to-end document write."""

import json

import pytest

from repro.obs import bench


def _minimal_doc():
    return {
        "schema": bench.SCHEMA,
        "figure": "fig6",
        "title": "t",
        "quick": True,
        "series": {"s": {"x": [1, 2], "y": [3, 4], "unit": "u"}},
        "comparisons": [
            {"name": "n", "paper": 1.0, "measured": 2.0, "ratio": 2.0, "unit": "x"}
        ],
        "metrics": None,
        "meta": {},
    }


def test_validate_accepts_minimal():
    assert bench.validate(_minimal_doc()) == []


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.pop("schema"),
        lambda d: d.update(schema="repro-bench/v0"),
        lambda d: d.update(figure="fig99"),
        lambda d: d.update(title=""),
        lambda d: d.update(quick="yes"),
        lambda d: d.update(series={"s": {"x": [1], "y": [1, 2]}}),
        lambda d: d.update(comparisons=[]),
        lambda d: d.update(comparisons=[{"name": "n"}]),
        lambda d: d.update(metrics=7),
    ],
)
def test_validate_rejects_malformed(mutate):
    doc = _minimal_doc()
    mutate(doc)
    assert bench.validate(doc)


def test_comparison_ratio():
    row = bench.comparison("x", 2.0, 3.0, "u")
    assert row["ratio"] == 1.5
    assert bench.comparison("x", "n/a", 3.0)["ratio"] is None
    assert bench.comparison("x", 0, 3.0)["ratio"] is None
    assert bench.comparison("ok", True, True)["ratio"] == 1.0


def test_run_bench_unknown_figure(tmp_path):
    with pytest.raises(ValueError):
        bench.run_bench(out_dir=str(tmp_path), quick=True, only=["fig99"])


def test_run_bench_writes_valid_fig6(tmp_path):
    paths = bench.run_bench(
        out_dir=str(tmp_path), quick=True, only=["fig6"], echo=lambda _: None
    )
    assert len(paths) == 1
    with open(paths[0]) as fh:
        doc = json.load(fh)
    assert bench.validate(doc) == []
    assert doc["figure"] == "fig6"
    assert doc["quick"] is True
    # The instrumented snapshot rode along and has the counters wired
    # through the kernel hot paths.
    metrics = doc["metrics"]
    assert metrics["metrics"]["kernel.ipc.sends"] > 0
    assert metrics["label_ops"]["fast_path"] > 0
    assert metrics["spans_recorded"] > 0
    # Slopes landed in the calibrated bands (same claim bench_fig6 makes).
    by_name = {row["name"]: row for row in doc["comparisons"]}
    assert 1.2 <= by_name["pages per cached session"]["measured"] <= 1.8
    # validate_files agrees with validate.
    assert bench.validate_files(paths) == {paths[0]: []}


def test_validate_files_reports_bad_json(tmp_path):
    bad = tmp_path / "BENCH_broken.json"
    bad.write_text("{not json")
    results = bench.validate_files([str(bad)])
    assert results[str(bad)]
